/**
 * @file
 * MetricsRegistry: the run-observability metric store (DESIGN.md §10).
 *
 * The paper's evaluation is an exercise in *cycle attribution* — a
 * bus-level logic analyzer splits execution into window traffic and
 * compute (§5.2). This registry is the software equivalent for our
 * three engines: every run point (one replay of a behavior at one
 * scheme × windows × policy configuration, or one instruction-level
 * workload) publishes an exact per-phase cycle account plus its event
 * counters, and harnesses dump the whole store as one JSON document
 * (`--metrics-out=FILE.json`).
 *
 * Determinism contract: everything outside the "host" namespace must
 * be byte-identical across repeated runs and across worker counts
 * (scripts/check_determinism.sh part 3 gates this). The rules that
 * make that hold:
 *
 *  - integer counters merge by addition (order-independent);
 *  - floating-point values are recorded *per point*, each computed by
 *    a deterministic single-threaded replay — never accumulated
 *    across concurrently-finishing points (FP addition order would
 *    leak the schedule);
 *  - all maps are ordered by name, so emission order is fixed;
 *  - anything derived from the host clock is published under a name
 *    starting with "host." and emitted in a separate "host" section
 *    that the determinism gates strip.
 *
 * Thread-safety: registration takes a mutex; counter bumps through a
 * handle are lock-free (std::atomic, relaxed). Sweep workers publish
 * whole finished points, so contention is per-point, not per-event.
 */

#ifndef CRW_OBS_METRICS_H_
#define CRW_OBS_METRICS_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <ostream>
#include <string>

namespace crw {
namespace obs {

/**
 * Exact decomposition of a run point's simulated time, mirroring
 * WindowEngine's hot counters: compute + callret + trap + switches
 * == total (engine now()) — the acceptance invariant every consumer
 * may rely on.
 */
struct CycleAccount
{
    std::uint64_t compute = 0;
    std::uint64_t callret = 0;
    std::uint64_t trap = 0;
    std::uint64_t switches = 0;
    std::uint64_t total = 0;

    CycleAccount &
    operator+=(const CycleAccount &o)
    {
        compute += o.compute;
        callret += o.callret;
        trap += o.trap;
        switches += o.switches;
        total += o.total;
        return *this;
    }

    bool
    balanced() const
    {
        return compute + callret + trap + switches == total;
    }
};

/**
 * One published run point: a cycle account, integer event counters,
 * and per-point scalar values (means etc., deterministic because each
 * is computed by one single-threaded run).
 */
struct PointRecord
{
    CycleAccount cycles;
    std::map<std::string, std::uint64_t> counters;
    std::map<std::string, double> values;
};

/** Min/max/count/sum summary for host-side samples. */
struct SampleSummary
{
    std::uint64_t count = 0;
    double sum = 0.0;
    double min = 0.0;
    double max = 0.0;

    void
    sample(double v)
    {
        if (count == 0 || v < min)
            min = v;
        if (count == 0 || v > max)
            max = v;
        sum += v;
        ++count;
    }

    double mean() const { return count ? sum / count : 0.0; }
};

/** The run manifest stamped into every observability output. */
struct RunManifest
{
    /** Sorted key -> value; keys like scheme/windows/policy/seed. */
    std::map<std::string, std::string> fields;

    void
    set(const std::string &key, const std::string &value)
    {
        fields[key] = value;
    }

    /** Accumulate a set-valued field ("NS,SNP,SP") in sorted order. */
    void noteValue(const std::string &key, const std::string &value);
};

/**
 * The registry. Components publish finished points with mergePoint();
 * long-lived counters (cache hits, dropped events) use counter
 * handles; host-side timing samples use sample() with a "host."
 * name.
 */
class MetricsRegistry
{
  public:
    MetricsRegistry() = default;

    MetricsRegistry(const MetricsRegistry &) = delete;
    MetricsRegistry &operator=(const MetricsRegistry &) = delete;

    /**
     * Lock-free counter handle (stable address for the registry's
     * lifetime). Acquire once, bump freely from any thread.
     */
    std::atomic<std::uint64_t> &counter(const std::string &name);

    /** One-shot add (lookup + bump under the hood). */
    void add(const std::string &name, std::uint64_t v);

    std::uint64_t counterValue(const std::string &name) const;

    /** Record one sample of a distribution (mutex-protected). */
    void sample(const std::string &name, double v);

    /**
     * Merge one finished run point under @p label (e.g.
     * "HC-fine/NS/w8/fifo"). Counters and cycles add; values insert
     * (idempotent re-publication of identical values is fine).
     */
    void mergePoint(const std::string &label, const PointRecord &rec);

    /** Read back a published point (empty record if unknown). */
    PointRecord point(const std::string &label) const;

    /** Number of published points. */
    std::size_t pointCount() const;

    /**
     * Emit the whole registry as one JSON document:
     *   { "manifest": {...}, "points": {...}, "counters": {...},
     *     "samples": {...}, "host": {...} }
     * Names beginning with "host." land in the "host" object (and
     * only there); everything else is deterministic by construction.
     */
    void writeJson(std::ostream &os, const RunManifest &manifest) const;

    /** writeJson() to @p path; false (and *error) on I/O failure. */
    bool writeJsonFile(const std::string &path,
                       const RunManifest &manifest,
                       std::string *error = nullptr) const;

  private:
    mutable std::mutex mu_;
    /** node-based map: atomic addresses are stable once created. */
    std::map<std::string, std::atomic<std::uint64_t>> counters_;
    std::map<std::string, SampleSummary> samples_;
    std::map<std::string, PointRecord> points_;
};

/** Stable JSON double formatting (shortest round-trip, %.17g cap). */
std::string formatJsonDouble(double v);

/** Minimal JSON string escaping for names and manifest values. */
std::string escapeJson(const std::string &s);

} // namespace obs
} // namespace crw

#endif // CRW_OBS_METRICS_H_
