/**
 * @file
 * Chrome trace-event JSON emitter (chrome://tracing / Perfetto).
 *
 * The software analogue of the paper's logic analyzer screenshots:
 * per-thread timelines of save/restore/trap/switch spans in simulated
 * cycles, plus host-time spans for the sweep worker pool. The output
 * is the Trace Event Format "JSON object" flavor —
 * {"traceEvents": [...]} — which both chrome://tracing and Perfetto
 * load directly.
 *
 * Timestamp convention: the format's `ts`/`dur` unit is microseconds;
 * simulated tracks map 1 cycle == 1 us (the viewer's time axis then
 * reads directly in cycles), host tracks use real microseconds since
 * the session started. The two never share a process, so the mixed
 * units cannot collide on one timeline row.
 *
 * Determinism: processes are sorted by name and renumbered at write
 * time, and events are sorted by (process, thread, ts, duration,
 * name), so a file's bytes depend only on the recorded spans — not on
 * which sweep worker happened to publish first. Host tracks are of
 * course wall-clock valued; only the *sim* tracks are byte-stable.
 *
 * Bounded: each collector caps its span count (--trace-limit); spans
 * past the cap are counted, reported in a "truncated" metadata
 * counter, and dropped — a logic analyzer has finite memory too.
 */

#ifndef CRW_OBS_TRACE_JSON_H_
#define CRW_OBS_TRACE_JSON_H_

#include <cstdint>
#include <map>
#include <mutex>
#include <ostream>
#include <string>
#include <vector>

namespace crw {
namespace obs {

/** One trace event (complete span or instant). */
struct TraceSpan
{
    std::int64_t ts = 0;  ///< start, in track time units (us)
    std::int64_t dur = 0; ///< duration; < 0 means an instant event
    std::uint32_t tid = 0;
    /** Short static name ("save", "ovf", "switch", "task 3"...). */
    std::string name;
    /** Event category ("callret", "trap", "switch", "host"...). */
    std::string cat;
};

/** One process track: a named group of threads full of spans. */
struct TraceTrack
{
    std::string process;                        ///< process_name
    std::map<std::uint32_t, std::string> threads; ///< tid -> name
    std::vector<TraceSpan> spans;
    std::uint64_t dropped = 0; ///< spans lost to the cap
};

/**
 * Collects whole tracks (each produced single-threaded by one span
 * collector) and writes one sorted Trace Event Format file.
 */
class TraceJsonWriter
{
  public:
    TraceJsonWriter() = default;

    TraceJsonWriter(const TraceJsonWriter &) = delete;
    TraceJsonWriter &operator=(const TraceJsonWriter &) = delete;

    /**
     * Merge one finished track. Tracks with the same process name
     * merge their threads and spans (the host pool publishes one
     * track per run() call).
     */
    void addTrack(TraceTrack track);

    std::size_t trackCount() const;
    std::uint64_t totalSpans() const;
    std::uint64_t totalDropped() const;

    /** Write the whole trace; deterministic given identical tracks. */
    void write(std::ostream &os) const;

    /** write() to @p path; false (and *error) on I/O failure. */
    bool writeFile(const std::string &path,
                   std::string *error = nullptr) const;

  private:
    mutable std::mutex mu_;
    std::map<std::string, TraceTrack> tracks_; ///< keyed by process
};

/**
 * Span accumulator for one track, used single-threaded by one
 * collector (an engine observer, a worker pool); hand the result to
 * TraceJsonWriter::addTrack() when the run point finishes.
 */
class SpanCollector
{
  public:
    explicit SpanCollector(std::string process,
                           std::uint64_t max_spans = 200000)
        : maxSpans_(max_spans)
    {
        track_.process = std::move(process);
    }

    void
    nameThread(std::uint32_t tid, std::string name)
    {
        track_.threads[tid] = std::move(name);
    }

    void
    complete(std::uint32_t tid, const char *name, const char *cat,
             std::int64_t ts, std::int64_t dur)
    {
        if (track_.spans.size() >= maxSpans_) {
            ++track_.dropped;
            return;
        }
        track_.spans.push_back(TraceSpan{ts, dur, tid, name, cat});
    }

    void
    instant(std::uint32_t tid, const char *name, const char *cat,
            std::int64_t ts)
    {
        complete(tid, name, cat, ts, -1);
    }

    const TraceTrack &track() const { return track_; }

    /** Move the track out (the collector is spent). */
    TraceTrack take() { return std::move(track_); }

  private:
    std::uint64_t maxSpans_;
    TraceTrack track_;
};

} // namespace obs
} // namespace crw

#endif // CRW_OBS_TRACE_JSON_H_
