/**
 * @file
 * Publish glue: turns the simulators' own statistics into
 * MetricsRegistry records and Chrome trace tracks (DESIGN.md §10).
 *
 * crw::obs depends on the simulation layers, never the reverse — the
 * engine, scheduler and CPU keep publishing through their existing
 * StatGroup/accessor surfaces, and these free functions translate.
 * A harness that never calls them pays nothing.
 */

#ifndef CRW_OBS_PUBLISH_H_
#define CRW_OBS_PUBLISH_H_

#include <cstdint>
#include <string>

#include "obs/metrics.h"
#include "obs/trace_json.h"
#include "win/engine.h" // EngineObserver base, ThreadId, Cycles

namespace crw {

class SchedCore;

namespace sparc {
class Cpu;
} // namespace sparc

namespace obs {

/**
 * Exact cycle account + event counters of one finished engine run.
 * The account satisfies balanced() by construction (it mirrors the
 * engine's own decomposition, whose sum is now()).
 */
PointRecord pointFromEngine(const WindowEngine &engine);

/** Add a SchedCore's dispatch statistics to a point record. */
void publishSchedCore(const SchedCore &core, PointRecord &rec);

/**
 * Add a SPARC CPU's execution counters — instruction total, dispatch
 * lane mix, block cache hit/fill/abort/invalidation counts — to a
 * point record.
 */
void publishCpu(const sparc::Cpu &cpu, PointRecord &rec);

/**
 * EngineObserver that records every save/restore/trap/switch as a
 * per-thread span (1 simulated cycle == 1 us) into a SpanCollector.
 * Install with WindowEngine::setObserver(); call take() afterwards
 * and hand the track to a TraceJsonWriter.
 */
class EngineTimeline final : public EngineObserver
{
  public:
    explicit EngineTimeline(std::string process,
                            std::uint64_t max_spans = 200000)
        : spans_(std::move(process), max_spans)
    {}

    void onSwitch(ThreadId from, ThreadId to, int to_depth,
                  Cycles begin, Cycles end) override;
    void onExit(ThreadId tid) override;
    void onSaveTimed(ThreadId tid, int depth, Cycles begin,
                     Cycles end) override;
    void onRestoreTimed(ThreadId tid, int depth, Cycles begin,
                        Cycles end) override;
    void onTrap(ThreadId tid, bool overflow, int windows_moved,
                Cycles begin, Cycles end) override;

    const TraceTrack &track() const { return spans_.track(); }
    TraceTrack take() { return spans_.take(); }

  private:
    /** Name the row on first use (rows appear in tid order anyway). */
    void touchThread(ThreadId tid);

    SpanCollector spans_;
    ThreadId maxNamed_ = -1;
    /** Latest span end seen; onExit (which carries no time) uses it. */
    Cycles last_ = 0;
};

} // namespace obs
} // namespace crw

#endif // CRW_OBS_PUBLISH_H_
