#include "common/stats.h"

#include <iomanip>

namespace crw {

void
StatGroup::reset()
{
    for (auto &kv : counters_)
        kv.second.reset();
    for (auto &kv : distributions_)
        kv.second.reset();
}

void
StatGroup::dump(std::ostream &os) const
{
    os << "==== " << name_ << " ====\n";
    for (const auto &kv : counters_)
        os << std::left << std::setw(40) << kv.first
           << std::right << std::setw(16) << kv.second.value() << '\n';
    for (const auto &kv : distributions_) {
        const auto &d = kv.second;
        os << std::left << std::setw(40) << kv.first
           << " n=" << d.count()
           << " mean=" << d.mean()
           << " min=" << d.min()
           << " max=" << d.max() << '\n';
    }
}

} // namespace crw
