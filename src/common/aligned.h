/**
 * @file
 * AlignedVec: a minimal growable array over 64-byte-aligned storage.
 *
 * The replay hot loops stream two kinds of arenas linearly: the
 * FlatTrace op/operand arrays and the batched replay's recorded
 * engine-op stream. std::vector aligns to alignof(T), so a lane
 * vector's 64-byte load in the SoA follower pass — and the op
 * stream's 8-at-a-time walk — could start mid cache line and split
 * every access across two lines. This container pins the base address
 * to kCacheAlign instead. It is deliberately tiny: trivially-copyable
 * element types only, no erase/insert, geometric growth, move-only —
 * exactly what an append-once/stream-many arena needs.
 */

#ifndef CRW_COMMON_ALIGNED_H_
#define CRW_COMMON_ALIGNED_H_

#include <cstddef>
#include <cstdlib>
#include <cstring>
#include <new>
#include <type_traits>
#include <utility>

namespace crw {

/** Alignment of every AlignedVec allocation (one x86 cache line). */
inline constexpr std::size_t kCacheAlign = 64;

template <typename T>
class AlignedVec
{
    static_assert(std::is_trivially_copyable_v<T>,
                  "AlignedVec is a raw byte arena");
    static_assert(kCacheAlign % alignof(T) == 0, "alignment order");

  public:
    AlignedVec() = default;
    ~AlignedVec() { std::free(data_); }

    AlignedVec(AlignedVec &&other) noexcept
        : data_(std::exchange(other.data_, nullptr)),
          size_(std::exchange(other.size_, 0)),
          cap_(std::exchange(other.cap_, 0))
    {}
    AlignedVec &
    operator=(AlignedVec &&other) noexcept
    {
        if (this != &other) {
            std::free(data_);
            data_ = std::exchange(other.data_, nullptr);
            size_ = std::exchange(other.size_, 0);
            cap_ = std::exchange(other.cap_, 0);
        }
        return *this;
    }
    AlignedVec(const AlignedVec &) = delete;
    AlignedVec &operator=(const AlignedVec &) = delete;

    T *data() { return data_; }
    const T *data() const { return data_; }
    std::size_t size() const { return size_; }
    bool empty() const { return size_ == 0; }

    T &operator[](std::size_t i) { return data_[i]; }
    const T &operator[](std::size_t i) const { return data_[i]; }
    T &back() { return data_[size_ - 1]; }

    const T *begin() const { return data_; }
    const T *end() const { return data_ + size_; }

    void
    reserve(std::size_t n)
    {
        if (n > cap_)
            regrow(n);
    }

    void
    push_back(const T &v)
    {
        if (size_ == cap_)
            regrow(cap_ < 16 ? 16 : cap_ * 2);
        data_[size_++] = v;
    }

    /** Zero-filled resize (arena-style: never shrinks capacity). */
    void
    resize(std::size_t n)
    {
        reserve(n);
        if (n > size_)
            std::memset(data_ + size_, 0, (n - size_) * sizeof(T));
        size_ = n;
    }

    void clear() { size_ = 0; }

  private:
    void
    regrow(std::size_t cap)
    {
        // aligned_alloc requires the size to be a multiple of the
        // alignment; round the byte count up to the next line.
        const std::size_t bytes =
            (cap * sizeof(T) + kCacheAlign - 1) / kCacheAlign *
            kCacheAlign;
        T *fresh = static_cast<T *>(
            std::aligned_alloc(kCacheAlign, bytes));
        if (!fresh)
            throw std::bad_alloc();
        if (size_)
            std::memcpy(fresh, data_, size_ * sizeof(T));
        std::free(data_);
        data_ = fresh;
        cap_ = bytes / sizeof(T);
    }

    T *data_ = nullptr;
    std::size_t size_ = 0;
    std::size_t cap_ = 0;
};

} // namespace crw

#endif // CRW_COMMON_ALIGNED_H_
