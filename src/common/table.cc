#include "common/table.h"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <iomanip>
#include <sstream>

#include "common/logging.h"

namespace crw {

Table::Table(std::vector<std::string> headers)
    : headers_(std::move(headers))
{
    crw_assert(!headers_.empty());
}

void
Table::addRow(std::vector<std::string> cells)
{
    if (cells.size() != headers_.size()) {
        crw_panic << "table row has " << cells.size()
                  << " cells, expected " << headers_.size();
    }
    rows_.push_back(std::move(cells));
}

void
Table::printText(std::ostream &os) const
{
    std::vector<std::size_t> widths(headers_.size());
    for (std::size_t c = 0; c < headers_.size(); ++c)
        widths[c] = headers_[c].size();
    for (const auto &row : rows_)
        for (std::size_t c = 0; c < row.size(); ++c)
            widths[c] = std::max(widths[c], row[c].size());

    auto emit_row = [&](const std::vector<std::string> &row) {
        for (std::size_t c = 0; c < row.size(); ++c) {
            os << (c ? "  " : "") << std::left
               << std::setw(static_cast<int>(widths[c])) << row[c];
        }
        os << '\n';
    };

    emit_row(headers_);
    for (std::size_t c = 0; c < headers_.size(); ++c)
        os << (c ? "  " : "") << std::string(widths[c], '-');
    os << '\n';
    for (const auto &row : rows_)
        emit_row(row);
}

void
Table::printCsv(std::ostream &os) const
{
    auto quote = [](const std::string &s) {
        if (s.find_first_of(",\"\n") == std::string::npos)
            return s;
        std::string out = "\"";
        for (char ch : s) {
            if (ch == '"')
                out += '"';
            out += ch;
        }
        out += '"';
        return out;
    };

    auto emit_row = [&](const std::vector<std::string> &row) {
        for (std::size_t c = 0; c < row.size(); ++c)
            os << (c ? "," : "") << quote(row[c]);
        os << '\n';
    };

    emit_row(headers_);
    for (const auto &row : rows_)
        emit_row(row);
}

void
Table::writeCsvFile(const std::string &path) const
{
    std::ofstream out(path);
    if (!out)
        crw_fatal << "cannot open " << path << " for writing";
    printCsv(out);
}

std::string
formatDouble(double v, int digits)
{
    std::ostringstream os;
    os << std::fixed << std::setprecision(digits) << v;
    std::string s = os.str();
    if (s.find('.') != std::string::npos) {
        while (!s.empty() && s.back() == '0')
            s.pop_back();
        if (!s.empty() && s.back() == '.')
            s.pop_back();
    }
    return s;
}

} // namespace crw
