/**
 * @file
 * Arithmetic on cyclic window indices.
 *
 * SPARC's CWP lives in a modulo-NWINDOWS space: "save" decrements the
 * pointer, "restore" increments it, and the window file wraps. All
 * window bookkeeping in crw funnels through these helpers so the wrap
 * logic exists in exactly one place.
 *
 * Terminology follows the paper: window i-1 is *above* window i (the
 * direction "save" moves), window i+1 is *below* it (the direction
 * "restore" moves).
 */

#ifndef CRW_COMMON_CYCLIC_H_
#define CRW_COMMON_CYCLIC_H_

#include "common/logging.h"

namespace crw {

/** Modulo-n index arithmetic with a validated modulus. */
class CyclicSpace
{
  public:
    /** @param n Number of slots; must be positive. */
    explicit CyclicSpace(int n)
        : n_(n)
    {
        crw_assert(n > 0);
    }

    int size() const { return n_; }

    /**
     * Normalize any (possibly negative) index into [0, n). Window
     * bookkeeping calls this on every simulated save/restore/switch,
     * almost always with an index within one revolution of [0, n), so
     * the single-correction path avoids the hardware divide; arbitrary
     * indices still fall through to the modulo.
     */
    int
    wrap(int i) const
    {
        if (i < 0)
            i += n_;
        else if (i >= n_)
            i -= n_;
        if (static_cast<unsigned>(i) < static_cast<unsigned>(n_))
            return i;
        int m = i % n_;
        return m < 0 ? m + n_ : m;
    }

    /**
     * The window reached from @p i by one "save" (one step above).
     *
     * @tparam Checked Evaluate the range assertion. The devirtualized
     *         replay loops instantiate the unchecked flavor — see the
     *         note in win/window_file.h; every other caller keeps the
     *         default.
     */
    template <bool Checked = true>
    int
    above(int i) const
    {
        if constexpr (Checked)
            crw_assert(i >= 0 && i < n_);
        return i == 0 ? n_ - 1 : i - 1;
    }

    /** The window reached from @p i by one "restore" (one step below). */
    template <bool Checked = true>
    int
    below(int i) const
    {
        if constexpr (Checked)
            crw_assert(i >= 0 && i < n_);
        return i + 1 == n_ ? 0 : i + 1;
    }

    /** @p i moved @p k steps in the "save" direction. */
    int aboveBy(int i, int k) const { return wrap(i - k); }

    /** @p i moved @p k steps in the "restore" direction. */
    int belowBy(int i, int k) const { return wrap(i + k); }

    /**
     * Number of "restore" steps to walk from @p from to @p to.
     * Always in [0, n).
     */
    int distanceBelow(int from, int to) const { return wrap(to - from); }

    /** Number of "save" steps to walk from @p from to @p to. */
    int distanceAbove(int from, int to) const { return wrap(from - to); }

    /**
     * True if @p x lies on the cyclic walk that starts at @p top and
     * takes @p len - 1 "restore" steps (i.e., inside the contiguous run
     * of @p len windows whose topmost member is @p top).
     */
    bool
    inRunBelow(int top, int len, int x) const
    {
        crw_assert(len >= 0 && len <= n_);
        return distanceBelow(top, x) < len;
    }

  private:
    int n_;
};

} // namespace crw

#endif // CRW_COMMON_CYCLIC_H_
