#include "common/byteio.h"

#include <cstdio>
#include <filesystem>

namespace crw {

bool
writeFileAtomic(const std::vector<std::uint8_t> &bytes,
                const std::string &path, std::string *error)
{
    const std::string tmp = path + ".tmp";
    std::FILE *fp = std::fopen(tmp.c_str(), "wb");
    if (!fp) {
        if (error)
            *error = "cannot open " + tmp;
        return false;
    }
    const bool wrote =
        std::fwrite(bytes.data(), 1, bytes.size(), fp) == bytes.size();
    std::fclose(fp);
    if (!wrote) {
        if (error)
            *error = "short write to " + tmp;
        std::remove(tmp.c_str());
        return false;
    }
    std::error_code ec;
    std::filesystem::rename(tmp, path, ec);
    if (ec) {
        if (error)
            *error = "rename failed: " + ec.message();
        std::remove(tmp.c_str());
        return false;
    }
    return true;
}

bool
readFileBytes(const std::string &path, std::vector<std::uint8_t> &out,
              std::string *error)
{
    std::FILE *fp = std::fopen(path.c_str(), "rb");
    if (!fp) {
        if (error)
            *error = "cannot open " + path;
        return false;
    }
    out.clear();
    std::uint8_t buf[1 << 16];
    std::size_t n;
    while ((n = std::fread(buf, 1, sizeof buf, fp)) > 0)
        out.insert(out.end(), buf, buf + n);
    std::fclose(fp);
    return true;
}

} // namespace crw
