#include "common/logging.h"

#include <cstdio>

namespace crw {

namespace {

void
defaultSink(LogLevel level, const std::string &msg)
{
    const char *tag = "";
    switch (level) {
      case LogLevel::Inform: tag = "info:  "; break;
      case LogLevel::Warn:   tag = "warn:  "; break;
      case LogLevel::Fatal:  tag = "fatal: "; break;
      case LogLevel::Panic:  tag = "panic: "; break;
    }
    std::fprintf(stderr, "%s%s\n", tag, msg.c_str());
}

LogSink currentSink = defaultSink;

} // namespace

LogSink
setLogSink(LogSink sink)
{
    LogSink old = currentSink;
    currentSink = sink ? sink : defaultSink;
    return old;
}

void
logMessage(LogLevel level, const std::string &msg)
{
    currentSink(level, msg);
}

void
panicUnreachable(const char *file, int line, const std::string &msg)
{
    std::ostringstream os;
    os << file << ':' << line << ": " << msg;
    logMessage(LogLevel::Panic, os.str());
    throw PanicError(os.str());
}

void
fatalUnreachable(const char *file, int line, const std::string &msg)
{
    std::ostringstream os;
    os << file << ':' << line << ": " << msg;
    logMessage(LogLevel::Fatal, os.str());
    throw FatalError(os.str());
}

void
assertFailed(const char *file, int line, const char *cond)
{
    std::ostringstream os;
    os << file << ':' << line << ": assertion failed: " << cond;
    logMessage(LogLevel::Panic, os.str());
    throw PanicError(os.str());
}

namespace detail {

LogStream::LogStream(LogLevel level, const char *file, int line)
    : level_(level)
{
    if (level == LogLevel::Fatal || level == LogLevel::Panic)
        stream_ << file << ':' << line << ": ";
}

LogStream::~LogStream() noexcept(false)
{
    const std::string msg = stream_.str();
    logMessage(level_, msg);
    if (level_ == LogLevel::Panic)
        throw PanicError(msg);
    if (level_ == LogLevel::Fatal)
        throw FatalError(msg);
}

} // namespace detail

} // namespace crw
