/**
 * @file
 * Minimal command-line flag parsing for examples and benches.
 *
 * Supports "--name=value", "--name value", and bare "--name" for bools.
 * Unknown flags are fatal so typos in experiment scripts fail loudly.
 */

#ifndef CRW_COMMON_FLAGS_H_
#define CRW_COMMON_FLAGS_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace crw {

/** Parsed command line: registered flags plus positional arguments. */
class FlagSet
{
  public:
    /** Register flags before parse(); @p help is shown by printHelp(). */
    void defineInt(const std::string &name, std::int64_t def,
                   const std::string &help);
    void defineString(const std::string &name, const std::string &def,
                      const std::string &help);
    void defineBool(const std::string &name, bool def,
                    const std::string &help);
    void defineDouble(const std::string &name, double def,
                      const std::string &help);

    /**
     * Parse argv. Throws FatalError on unknown or malformed flags.
     * "--help" prints usage and returns false.
     */
    bool parse(int argc, const char *const *argv);

    /**
     * True once @p name has been registered. Lets flag providers that
     * share a FlagSet (the crw-bench registry defines every exhibit's
     * flags up front) skip names another provider already owns.
     */
    bool isDefined(const std::string &name) const
    {
        return flags_.count(name) != 0;
    }

    std::int64_t getInt(const std::string &name) const;
    const std::string &getString(const std::string &name) const;
    bool getBool(const std::string &name) const;
    double getDouble(const std::string &name) const;

    const std::vector<std::string> &positional() const
    {
        return positional_;
    }

    void printHelp(const std::string &program) const;

  private:
    enum class Kind { Int, String, Bool, Double };

    struct Flag
    {
        Kind kind;
        std::string help;
        std::string value; // canonical string form
    };

    const Flag &lookup(const std::string &name, Kind kind) const;
    void define(const std::string &name, Kind kind, std::string def,
                const std::string &help);

    std::map<std::string, Flag> flags_;
    std::vector<std::string> positional_;
};

} // namespace crw

#endif // CRW_COMMON_FLAGS_H_
