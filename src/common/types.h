/**
 * @file
 * Fundamental scalar types shared across the crw library.
 */

#ifndef CRW_COMMON_TYPES_H_
#define CRW_COMMON_TYPES_H_

#include <cstdint>

namespace crw {

/** Simulated processor cycles. */
using Cycles = std::uint64_t;

/** A 32-bit SPARC word. */
using Word = std::uint32_t;

/** A simulated physical/virtual address (flat 32-bit space). */
using Addr = std::uint32_t;

/** Identifier of a window in the cyclic window file. */
using WindowIndex = int;

/** Identifier of a simulated thread. */
using ThreadId = int;

/** Sentinel meaning "no thread". */
inline constexpr ThreadId kNoThread = -1;

/** Sentinel meaning "no window". */
inline constexpr WindowIndex kNoWindow = -1;

} // namespace crw

#endif // CRW_COMMON_TYPES_H_
