/**
 * @file
 * Lightweight named statistics, in the spirit of gem5's stats package.
 *
 * A StatGroup owns a set of named counters and sample distributions.
 * Simulation components register stats at construction and bump them
 * during the run; harnesses read them out by name or dump them all.
 */

#ifndef CRW_COMMON_STATS_H_
#define CRW_COMMON_STATS_H_

#include <cstdint>
#include <limits>
#include <map>
#include <ostream>
#include <string>

#include "common/logging.h"

namespace crw {

/** Monotonic event counter. */
class Counter
{
  public:
    Counter() = default;

    Counter &
    operator+=(std::uint64_t n)
    {
        value_ += n;
        return *this;
    }

    Counter &
    operator++()
    {
        ++value_;
        return *this;
    }

    std::uint64_t value() const { return value_; }
    void reset() { value_ = 0; }

  private:
    std::uint64_t value_ = 0;
};

/** Streaming scalar distribution: count / sum / min / max / mean. */
class Distribution
{
  public:
    void
    sample(double v)
    {
        // ±inf sentinels instead of a count_ == 0 test: both extreme
        // updates compile to branch-free min/max instructions, which
        // matters for the replay loops (several samples per context
        // switch). The accessors below mask the sentinels.
        min_ = v < min_ ? v : min_;
        max_ = v > max_ ? v : max_;
        sum_ += v;
        sumSq_ += v * v;
        ++count_;
    }

    std::uint64_t count() const { return count_; }
    double sum() const { return sum_; }
    double min() const { return count_ ? min_ : 0.0; }
    double max() const { return count_ ? max_ : 0.0; }
    double mean() const { return count_ ? sum_ / count_ : 0.0; }

    /** Population variance. */
    double
    variance() const
    {
        if (count_ == 0)
            return 0.0;
        const double m = mean();
        return sumSq_ / count_ - m * m;
    }

    void
    reset()
    {
        count_ = 0;
        sum_ = sumSq_ = 0.0;
        min_ = kPlusInf;
        max_ = kMinusInf;
    }

  private:
    static constexpr double kPlusInf =
        std::numeric_limits<double>::infinity();
    static constexpr double kMinusInf =
        -std::numeric_limits<double>::infinity();

    std::uint64_t count_ = 0;
    double sum_ = 0.0;
    double sumSq_ = 0.0;
    double min_ = kPlusInf;
    double max_ = kMinusInf;
};

/**
 * Named registry of counters and distributions.
 *
 * Lookup creates on first use, so components can share a group without
 * an explicit registration phase.
 */
class StatGroup
{
  public:
    explicit StatGroup(std::string name = "stats")
        : name_(std::move(name))
    {}

    Counter &counter(const std::string &name) { return counters_[name]; }

    Distribution &
    distribution(const std::string &name)
    {
        return distributions_[name];
    }

    /** Value of a counter, or 0 if it was never touched. */
    std::uint64_t
    counterValue(const std::string &name) const
    {
        auto it = counters_.find(name);
        return it == counters_.end() ? 0 : it->second.value();
    }

    bool
    hasCounter(const std::string &name) const
    {
        return counters_.count(name) != 0;
    }

    const std::string &name() const { return name_; }

    const std::map<std::string, Counter> &counters() const
    {
        return counters_;
    }

    const std::map<std::string, Distribution> &distributions() const
    {
        return distributions_;
    }

    void reset();

    /** Human-readable dump of every stat, sorted by name. */
    void dump(std::ostream &os) const;

  private:
    std::string name_;
    std::map<std::string, Counter> counters_;
    std::map<std::string, Distribution> distributions_;
};

} // namespace crw

#endif // CRW_COMMON_STATS_H_
