/**
 * @file
 * Tabular output for benches: aligned text tables and CSV.
 *
 * Every exhibit reproduced from the paper is emitted through this class
 * so the console rendering and the machine-readable CSV stay in sync.
 */

#ifndef CRW_COMMON_TABLE_H_
#define CRW_COMMON_TABLE_H_

#include <ostream>
#include <string>
#include <vector>

namespace crw {

/** A simple row/column table with string cells. */
class Table
{
  public:
    explicit Table(std::vector<std::string> headers);

    /** Append a fully-formed row; must match the header width. */
    void addRow(std::vector<std::string> cells);

    /** Convenience: format arbitrary streamable values into a row. */
    template <typename... Ts>
    void
    addRowOf(const Ts &...values)
    {
        std::vector<std::string> cells;
        cells.reserve(sizeof...(Ts));
        (cells.push_back(formatCell(values)), ...);
        addRow(std::move(cells));
    }

    std::size_t numRows() const { return rows_.size(); }
    std::size_t numCols() const { return headers_.size(); }

    const std::vector<std::string> &headers() const { return headers_; }
    const std::vector<std::vector<std::string>> &rows() const
    {
        return rows_;
    }

    /** Render with aligned columns and a header rule. */
    void printText(std::ostream &os) const;

    /** Render as RFC-4180-ish CSV (quotes cells containing , or "). */
    void printCsv(std::ostream &os) const;

    /** Write the CSV form to @p path, creating parent-less files only. */
    void writeCsvFile(const std::string &path) const;

  private:
    template <typename T>
    static std::string formatCell(const T &value);

    std::vector<std::string> headers_;
    std::vector<std::vector<std::string>> rows_;
};

/** Format a double with @p digits places, trimming trailing zeros. */
std::string formatDouble(double v, int digits = 3);

template <typename T>
std::string
Table::formatCell(const T &value)
{
    if constexpr (std::is_same_v<T, std::string>) {
        return value;
    } else if constexpr (std::is_convertible_v<T, const char *>) {
        return std::string(value);
    } else if constexpr (std::is_floating_point_v<T>) {
        return formatDouble(static_cast<double>(value));
    } else {
        return std::to_string(value);
    }
}

} // namespace crw

#endif // CRW_COMMON_TABLE_H_
