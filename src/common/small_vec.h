/**
 * @file
 * SmallVec: a vector with inline small-buffer storage.
 *
 * Purpose-built for the replay driver's stream waiter lists: a bounded
 * stream can have at most one waiter per application thread (seven in
 * the spell workload), so an inline capacity that covers the thread
 * count makes every waiter push/clear allocation-free on the replay
 * hot path. Beyond the inline capacity the elements spill to the heap
 * transparently — correctness never depends on N.
 *
 * Only the operations the hot paths need are provided (push_back,
 * clear, iteration, indexing); elements must be trivially copyable and
 * trivially destructible, which keeps both the spill and the clear a
 * memcpy/counter reset.
 */

#ifndef CRW_COMMON_SMALL_VEC_H_
#define CRW_COMMON_SMALL_VEC_H_

#include <cstddef>
#include <cstring>
#include <type_traits>

#include "common/logging.h"

namespace crw {

template <typename T, std::size_t N>
class SmallVec
{
    static_assert(std::is_trivially_copyable<T>::value,
                  "SmallVec spills by memcpy");
    static_assert(std::is_trivially_destructible<T>::value,
                  "SmallVec never runs element destructors");

  public:
    SmallVec() = default;

    SmallVec(const SmallVec &) = delete;
    SmallVec &operator=(const SmallVec &) = delete;

    /** Move (for vector-of-SmallVec containers): steals any heap. */
    SmallVec(SmallVec &&other) noexcept
        : heap_(other.heap_),
          size_(other.size_),
          capacity_(other.capacity_)
    {
        if (heap_) {
            data_ = heap_;
        } else {
            std::memcpy(inline_, other.inline_, size_ * sizeof(T));
            data_ = inline_;
        }
        other.heap_ = nullptr;
        other.data_ = other.inline_;
        other.size_ = 0;
        other.capacity_ = N;
    }
    SmallVec &operator=(SmallVec &&) = delete;

    ~SmallVec() { delete[] heap_; }

    void
    push_back(T value)
    {
        if (size_ == capacity_)
            grow();
        data_[size_++] = value;
    }

    void clear() { size_ = 0; }

    bool empty() const { return size_ == 0; }
    std::size_t size() const { return size_; }

    T
    operator[](std::size_t i) const
    {
        crw_assert(i < size_);
        return data_[i];
    }

    const T *begin() const { return data_; }
    const T *end() const { return data_ + size_; }

    /** True while no push has ever spilled to the heap. */
    bool inlineStorage() const { return heap_ == nullptr; }

  private:
    void
    grow()
    {
        const std::size_t cap = capacity_ * 2;
        T *heap = new T[cap];
        std::memcpy(heap, data_, size_ * sizeof(T));
        delete[] heap_;
        heap_ = heap;
        data_ = heap;
        capacity_ = cap;
    }

    T inline_[N];
    T *heap_ = nullptr;
    T *data_ = inline_;
    std::size_t size_ = 0;
    std::size_t capacity_ = N;
};

} // namespace crw

#endif // CRW_COMMON_SMALL_VEC_H_
