/**
 * @file
 * Deterministic pseudo-random number generation.
 *
 * Every stochastic choice in crw (corpus synthesis, microtrace call
 * walks, randomized property tests) draws from this generator so runs
 * are exactly reproducible from a seed. The core is xoshiro256**,
 * seeded via SplitMix64 per the reference recommendation.
 */

#ifndef CRW_COMMON_RNG_H_
#define CRW_COMMON_RNG_H_

#include <cstdint>
#include <vector>

namespace crw {

/** Deterministic 64-bit PRNG (xoshiro256**). */
class Rng
{
  public:
    explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ull);

    /** Next raw 64-bit value. */
    std::uint64_t next();

    /** Uniform integer in [0, bound). @p bound must be positive. */
    std::uint64_t nextBelow(std::uint64_t bound);

    /** Uniform integer in [lo, hi] inclusive. */
    std::int64_t nextInRange(std::int64_t lo, std::int64_t hi);

    /** Uniform double in [0, 1). */
    double nextDouble();

    /** Bernoulli trial with probability @p p of true. */
    bool nextBool(double p = 0.5);

  private:
    std::uint64_t state_[4];
};

/**
 * Zipf(s) sampler over ranks 1..n. Used to give the synthetic corpus a
 * natural word-frequency distribution, which in turn gives the spell
 * checker the irregular stream/call activity the paper relies on.
 */
class ZipfSampler
{
  public:
    /**
     * @param n Number of ranks.
     * @param s Skew exponent (s = 1.0 approximates English text).
     */
    ZipfSampler(int n, double s);

    /** Sample a rank in [0, n). */
    int sample(Rng &rng) const;

    int size() const { return static_cast<int>(cdf_.size()); }

  private:
    std::vector<double> cdf_;
};

} // namespace crw

#endif // CRW_COMMON_RNG_H_
