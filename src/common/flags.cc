#include "common/flags.h"

#include <cstdio>
#include <cstdlib>

#include "common/logging.h"

namespace crw {

void
FlagSet::define(const std::string &name, Kind kind, std::string def,
                const std::string &help)
{
    crw_assert(!flags_.count(name));
    flags_[name] = Flag{kind, help, std::move(def)};
}

void
FlagSet::defineInt(const std::string &name, std::int64_t def,
                   const std::string &help)
{
    define(name, Kind::Int, std::to_string(def), help);
}

void
FlagSet::defineString(const std::string &name, const std::string &def,
                      const std::string &help)
{
    define(name, Kind::String, def, help);
}

void
FlagSet::defineBool(const std::string &name, bool def,
                    const std::string &help)
{
    define(name, Kind::Bool, def ? "true" : "false", help);
}

void
FlagSet::defineDouble(const std::string &name, double def,
                      const std::string &help)
{
    define(name, Kind::Double, std::to_string(def), help);
}

bool
FlagSet::parse(int argc, const char *const *argv)
{
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg.rfind("--", 0) != 0) {
            positional_.push_back(std::move(arg));
            continue;
        }
        std::string body = arg.substr(2);
        if (body == "help") {
            printHelp(argv[0]);
            return false;
        }
        std::string name;
        std::string value;
        bool have_value = false;
        if (auto eq = body.find('='); eq != std::string::npos) {
            name = body.substr(0, eq);
            value = body.substr(eq + 1);
            have_value = true;
        } else {
            name = body;
        }
        auto it = flags_.find(name);
        if (it == flags_.end())
            crw_fatal << "unknown flag --" << name;
        Flag &flag = it->second;
        if (!have_value) {
            if (flag.kind == Kind::Bool) {
                value = "true";
            } else if (i + 1 < argc) {
                value = argv[++i];
            } else {
                crw_fatal << "flag --" << name << " needs a value";
            }
        }
        // Validate typed flags eagerly.
        if (flag.kind == Kind::Int) {
            char *end = nullptr;
            std::strtoll(value.c_str(), &end, 0);
            if (!end || *end != '\0' || value.empty())
                crw_fatal << "flag --" << name << ": bad integer '"
                          << value << "'";
        } else if (flag.kind == Kind::Double) {
            char *end = nullptr;
            std::strtod(value.c_str(), &end);
            if (!end || *end != '\0' || value.empty())
                crw_fatal << "flag --" << name << ": bad number '"
                          << value << "'";
        } else if (flag.kind == Kind::Bool) {
            if (value != "true" && value != "false")
                crw_fatal << "flag --" << name
                          << ": expected true/false, got '" << value << "'";
        }
        flag.value = value;
    }
    return true;
}

const FlagSet::Flag &
FlagSet::lookup(const std::string &name, Kind kind) const
{
    auto it = flags_.find(name);
    if (it == flags_.end())
        crw_panic << "flag --" << name << " was never defined";
    if (it->second.kind != kind)
        crw_panic << "flag --" << name << " accessed with wrong type";
    return it->second;
}

std::int64_t
FlagSet::getInt(const std::string &name) const
{
    return std::strtoll(lookup(name, Kind::Int).value.c_str(), nullptr, 0);
}

const std::string &
FlagSet::getString(const std::string &name) const
{
    return lookup(name, Kind::String).value;
}

bool
FlagSet::getBool(const std::string &name) const
{
    return lookup(name, Kind::Bool).value == "true";
}

double
FlagSet::getDouble(const std::string &name) const
{
    return std::strtod(lookup(name, Kind::Double).value.c_str(), nullptr);
}

void
FlagSet::printHelp(const std::string &program) const
{
    std::fprintf(stderr, "usage: %s [flags]\n", program.c_str());
    for (const auto &kv : flags_) {
        std::fprintf(stderr, "  --%-24s %s (default: %s)\n",
                     kv.first.c_str(), kv.second.help.c_str(),
                     kv.second.value.c_str());
    }
}

} // namespace crw
