#include "common/rng.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace crw {

namespace {

std::uint64_t
splitMix64(std::uint64_t &x)
{
    x += 0x9E3779B97F4A7C15ull;
    std::uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
    return z ^ (z >> 31);
}

std::uint64_t
rotl(std::uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // namespace

Rng::Rng(std::uint64_t seed)
{
    std::uint64_t sm = seed;
    for (auto &s : state_)
        s = splitMix64(sm);
    // xoshiro must not start in the all-zero state.
    if (!(state_[0] | state_[1] | state_[2] | state_[3]))
        state_[0] = 1;
}

std::uint64_t
Rng::next()
{
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;

    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);

    return result;
}

std::uint64_t
Rng::nextBelow(std::uint64_t bound)
{
    crw_assert(bound > 0);
    // Rejection sampling to avoid modulo bias.
    const std::uint64_t limit = ~0ull - ~0ull % bound;
    std::uint64_t v;
    do {
        v = next();
    } while (v >= limit);
    return v % bound;
}

std::int64_t
Rng::nextInRange(std::int64_t lo, std::int64_t hi)
{
    crw_assert(lo <= hi);
    const auto span =
        static_cast<std::uint64_t>(hi) - static_cast<std::uint64_t>(lo) + 1;
    return lo + static_cast<std::int64_t>(nextBelow(span));
}

double
Rng::nextDouble()
{
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

bool
Rng::nextBool(double p)
{
    return nextDouble() < p;
}

ZipfSampler::ZipfSampler(int n, double s)
{
    crw_assert(n > 0);
    cdf_.resize(n);
    double sum = 0.0;
    for (int i = 0; i < n; ++i) {
        sum += 1.0 / std::pow(static_cast<double>(i + 1), s);
        cdf_[i] = sum;
    }
    for (auto &v : cdf_)
        v /= sum;
}

int
ZipfSampler::sample(Rng &rng) const
{
    const double u = rng.nextDouble();
    auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
    if (it == cdf_.end())
        --it;
    return static_cast<int>(it - cdf_.begin());
}

} // namespace crw
