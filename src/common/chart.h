/**
 * @file
 * ASCII line charts for the figure-reproduction benches.
 *
 * Each figure bench prints both a CSV series table and one of these
 * charts so the figure's *shape* (who wins, where curves cross, where
 * they saturate) is visible directly in the bench output.
 */

#ifndef CRW_COMMON_CHART_H_
#define CRW_COMMON_CHART_H_

#include <ostream>
#include <string>
#include <vector>

namespace crw {

/** One named series of (x, y) points. */
struct ChartSeries
{
    std::string name;
    std::vector<double> xs;
    std::vector<double> ys;
};

/** Renders multiple series into a character grid. */
class AsciiChart
{
  public:
    AsciiChart(std::string title, std::string xLabel, std::string yLabel);

    void addSeries(ChartSeries series);

    /** Force the y axis to start at zero (default: auto range). */
    void setYFromZero(bool v) { yFromZero_ = v; }

    /** Plot grid size in characters (content area). */
    void setSize(int width, int height);

    void render(std::ostream &os) const;

  private:
    std::string title_;
    std::string xLabel_;
    std::string yLabel_;
    std::vector<ChartSeries> series_;
    int width_ = 64;
    int height_ = 20;
    bool yFromZero_ = false;
};

} // namespace crw

#endif // CRW_COMMON_CHART_H_
