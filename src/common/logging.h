/**
 * @file
 * Status and error reporting for the crw library.
 *
 * Follows the gem5 convention: panic() is for internal invariant
 * violations (a crw bug — aborts), fatal() is for user errors (bad
 * configuration — exits cleanly), warn()/inform() never stop anything.
 */

#ifndef CRW_COMMON_LOGGING_H_
#define CRW_COMMON_LOGGING_H_

#include <sstream>
#include <string>

namespace crw {

/** Severity of a log message. */
enum class LogLevel {
    Inform,
    Warn,
    Fatal,
    Panic,
};

/**
 * Sink invoked for every log message. Tests may replace it to capture
 * output; the default writes to stderr.
 */
using LogSink = void (*)(LogLevel, const std::string &);

/** Install a replacement log sink; returns the previous one. */
LogSink setLogSink(LogSink sink);

/** Emit one message through the current sink. */
void logMessage(LogLevel level, const std::string &msg);

/** Log a panic message and throw PanicError; never returns. */
[[noreturn]] void panicUnreachable(const char *file, int line,
                                   const std::string &msg);

/** Log a fatal (user-error) message and throw FatalError. */
[[noreturn]] void fatalUnreachable(const char *file, int line,
                                   const std::string &msg);

/** Out-of-line failure path of crw_assert (logs, throws PanicError). */
[[noreturn]] void assertFailed(const char *file, int line,
                               const char *cond);

namespace detail {

/** Builds the message text, then dispatches on destruction. */
class LogStream
{
  public:
    LogStream(LogLevel level, const char *file, int line);
    ~LogStream() noexcept(false);

    LogStream(const LogStream &) = delete;
    LogStream &operator=(const LogStream &) = delete;

    template <typename T>
    LogStream &
    operator<<(const T &value)
    {
        stream_ << value;
        return *this;
    }

  private:
    LogLevel level_;
    std::ostringstream stream_;
};

} // namespace detail

/** Thrown by fatal() so harnesses/tests can intercept user errors. */
class FatalError : public std::runtime_error
{
  public:
    explicit FatalError(const std::string &what)
        : std::runtime_error(what)
    {}
};

/** Thrown by panic() — indicates a library bug. */
class PanicError : public std::logic_error
{
  public:
    explicit PanicError(const std::string &what)
        : std::logic_error(what)
    {}
};

} // namespace crw

/** Report an unrecoverable internal bug and throw PanicError. */
#define crw_panic \
    ::crw::detail::LogStream(::crw::LogLevel::Panic, __FILE__, __LINE__)

/** Report an unrecoverable user/configuration error; throws FatalError. */
#define crw_fatal \
    ::crw::detail::LogStream(::crw::LogLevel::Fatal, __FILE__, __LINE__)

/** Warn about suspicious but survivable conditions. */
#define crw_warn \
    ::crw::detail::LogStream(::crw::LogLevel::Warn, __FILE__, __LINE__)

/** Plain status output. */
#define crw_inform \
    ::crw::detail::LogStream(::crw::LogLevel::Inform, __FILE__, __LINE__)

/**
 * Panic at a point the control flow must never reach (e.g. after an
 * exhaustive switch); usable where the compiler needs [[noreturn]].
 */
#define crw_unreachable(msg) \
    ::crw::panicUnreachable(__FILE__, __LINE__, msg)

/** Fatal (user-error) variant of crw_unreachable. */
#define crw_fatal_unreachable(msg) \
    ::crw::fatalUnreachable(__FILE__, __LINE__, msg)

/**
 * Internal invariant check: active in all build types (the simulator's
 * correctness claims rest on these). The failure path is one call to a
 * cold [[noreturn]] helper, so the inline footprint of an assert is a
 * compare and a predicted-not-taken branch — small enough that the
 * window-file primitives asserting on every simulated event still
 * inline into the replay loops.
 */
#define crw_assert(cond)                                                  \
    do {                                                                  \
        if (!(cond))                                                      \
            ::crw::assertFailed(__FILE__, __LINE__, #cond);               \
    } while (0)

#endif // CRW_COMMON_LOGGING_H_
