/**
 * @file
 * Flat little-endian byte-buffer writer/reader plus the FNV-1a hash —
 * the serialization substrate shared by the versioned binary file
 * formats (trace/event_trace.cc CRWTRACE, trace/run_metrics.cc
 * CRWMETRS). Both formats frame the same way: magic, u32 version,
 * payload, trailing u64 FNV-1a checksum of the payload.
 *
 * The Reader never throws or asserts on malformed input: a short or
 * truncated buffer flips ok to false and every subsequent read
 * returns a zero value, so callers validate once at the end.
 */

#ifndef CRW_COMMON_BYTEIO_H_
#define CRW_COMMON_BYTEIO_H_

#include <cstdint>
#include <string>
#include <vector>

namespace crw {

/** 64-bit FNV-1a over a byte range. */
inline std::uint64_t
fnv1a64(const std::uint8_t *data, std::size_t n,
        std::uint64_t seed = 0xcbf29ce484222325ull)
{
    std::uint64_t h = seed;
    for (std::size_t i = 0; i < n; ++i) {
        h ^= data[i];
        h *= 0x100000001b3ull;
    }
    return h;
}

/** Convenience overload for strings (canonical keys, digests). */
inline std::uint64_t
fnv1a64(const std::string &s, std::uint64_t seed = 0xcbf29ce484222325ull)
{
    return fnv1a64(reinterpret_cast<const std::uint8_t *>(s.data()),
                   s.size(), seed);
}

/** Append-only little-endian encoder. */
struct ByteWriter
{
    std::vector<std::uint8_t> bytes;

    void
    u32(std::uint32_t v)
    {
        for (int i = 0; i < 4; ++i)
            bytes.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
    }

    void
    u64(std::uint64_t v)
    {
        for (int i = 0; i < 8; ++i)
            bytes.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
    }

    /** Doubles travel as their exact IEEE-754 bit pattern. */
    void
    f64(double v)
    {
        std::uint64_t bits;
        static_assert(sizeof bits == sizeof v);
        __builtin_memcpy(&bits, &v, sizeof bits);
        u64(bits);
    }

    void
    str(const std::string &s)
    {
        u32(static_cast<std::uint32_t>(s.size()));
        bytes.insert(bytes.end(), s.begin(), s.end());
    }

    void
    blob(const std::vector<std::uint8_t> &b)
    {
        u64(b.size());
        bytes.insert(bytes.end(), b.begin(), b.end());
    }
};

/** Bounds-checked little-endian decoder (see file comment). */
struct ByteReader
{
    const std::uint8_t *p;
    const std::uint8_t *end;
    bool ok = true;

    bool
    need(std::size_t n)
    {
        if (static_cast<std::size_t>(end - p) < n) {
            ok = false;
            return false;
        }
        return true;
    }

    std::uint32_t
    u32()
    {
        if (!need(4))
            return 0;
        std::uint32_t v = 0;
        for (int i = 0; i < 4; ++i)
            v |= static_cast<std::uint32_t>(*p++) << (8 * i);
        return v;
    }

    std::uint64_t
    u64()
    {
        if (!need(8))
            return 0;
        std::uint64_t v = 0;
        for (int i = 0; i < 8; ++i)
            v |= static_cast<std::uint64_t>(*p++) << (8 * i);
        return v;
    }

    double
    f64()
    {
        const std::uint64_t bits = u64();
        double v;
        __builtin_memcpy(&v, &bits, sizeof v);
        return v;
    }

    std::string
    str()
    {
        const std::uint32_t n = u32();
        if (!need(n))
            return {};
        std::string s(reinterpret_cast<const char *>(p), n);
        p += n;
        return s;
    }

    std::vector<std::uint8_t>
    blob()
    {
        const std::uint64_t n = u64();
        if (!need(n))
            return {};
        std::vector<std::uint8_t> b(p, p + n);
        p += n;
        return b;
    }
};

/**
 * Write @p bytes to @p path atomically (temp file + rename) so a
 * crashed writer can never leave a torn file behind for a later
 * reader to trip over.
 */
bool writeFileAtomic(const std::vector<std::uint8_t> &bytes,
                     const std::string &path,
                     std::string *error = nullptr);

/** Slurp @p path. False (and *error) if it cannot be opened. */
bool readFileBytes(const std::string &path,
                   std::vector<std::uint8_t> &out,
                   std::string *error = nullptr);

} // namespace crw

#endif // CRW_COMMON_BYTEIO_H_
