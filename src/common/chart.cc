#include "common/chart.h"

#include <algorithm>
#include <cmath>
#include <iomanip>
#include <limits>

#include "common/logging.h"
#include "common/table.h"

namespace crw {

namespace {

/** Marker glyphs cycled across series. */
constexpr char kMarkers[] = {'*', 'o', '+', 'x', '#', '@', '%', '&'};

} // namespace

AsciiChart::AsciiChart(std::string title, std::string xLabel,
                       std::string yLabel)
    : title_(std::move(title)),
      xLabel_(std::move(xLabel)),
      yLabel_(std::move(yLabel))
{}

void
AsciiChart::addSeries(ChartSeries series)
{
    crw_assert(series.xs.size() == series.ys.size());
    series_.push_back(std::move(series));
}

void
AsciiChart::setSize(int width, int height)
{
    crw_assert(width >= 16 && height >= 4);
    width_ = width;
    height_ = height;
}

void
AsciiChart::render(std::ostream &os) const
{
    double min_x = std::numeric_limits<double>::infinity();
    double max_x = -min_x;
    double min_y = min_x;
    double max_y = -min_x;
    bool any = false;
    for (const auto &s : series_) {
        for (std::size_t i = 0; i < s.xs.size(); ++i) {
            min_x = std::min(min_x, s.xs[i]);
            max_x = std::max(max_x, s.xs[i]);
            min_y = std::min(min_y, s.ys[i]);
            max_y = std::max(max_y, s.ys[i]);
            any = true;
        }
    }
    if (!any) {
        os << title_ << ": (no data)\n";
        return;
    }
    if (yFromZero_)
        min_y = std::min(min_y, 0.0);
    if (max_x == min_x)
        max_x = min_x + 1;
    if (max_y == min_y)
        max_y = min_y + 1;

    std::vector<std::string> grid(height_, std::string(width_, ' '));
    auto plot = [&](double x, double y, char marker) {
        const int col = static_cast<int>(std::lround(
            (x - min_x) / (max_x - min_x) * (width_ - 1)));
        const int row = static_cast<int>(std::lround(
            (y - min_y) / (max_y - min_y) * (height_ - 1)));
        grid[height_ - 1 - row][col] = marker;
    };

    for (std::size_t si = 0; si < series_.size(); ++si) {
        const auto &s = series_[si];
        const char marker = kMarkers[si % sizeof(kMarkers)];
        // Connect consecutive points with linear interpolation so the
        // curve shape reads even with few samples.
        for (std::size_t i = 0; i + 1 < s.xs.size(); ++i) {
            const int steps = width_;
            for (int t = 0; t <= steps; ++t) {
                const double f = static_cast<double>(t) / steps;
                plot(s.xs[i] + f * (s.xs[i + 1] - s.xs[i]),
                     s.ys[i] + f * (s.ys[i + 1] - s.ys[i]), marker);
            }
        }
        if (s.xs.size() == 1)
            plot(s.xs[0], s.ys[0], marker);
    }

    os << title_ << "\n";
    os << "  y: " << yLabel_ << "  [" << formatDouble(min_y) << " .. "
       << formatDouble(max_y) << "]\n";
    for (const auto &line : grid)
        os << "  |" << line << "\n";
    os << "  +" << std::string(width_, '-') << "\n";
    os << "   x: " << xLabel_ << "  [" << formatDouble(min_x) << " .. "
       << formatDouble(max_x) << "]\n";
    os << "   legend:";
    for (std::size_t si = 0; si < series_.size(); ++si) {
        os << "  " << kMarkers[si % sizeof(kMarkers)] << "="
           << series_[si].name;
    }
    os << "\n";
}

} // namespace crw
