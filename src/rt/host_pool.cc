#include "rt/host_pool.h"

#include <algorithm>

#include "common/logging.h"

namespace crw {

namespace {
HostPool::EventHook g_eventHook = nullptr;
} // namespace

void
HostPool::setEventHook(EventHook hook)
{
    g_eventHook = hook;
}

HostPool &
HostPool::instance()
{
    static HostPool pool;
    return pool;
}

HostPool::~HostPool()
{
    {
        std::lock_guard<std::mutex> lock(mu_);
        stop_ = true;
    }
    jobCv_.notify_all();
    for (std::thread &t : helpers_)
        t.join();
}

int
HostPool::spawnedHelpers() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return static_cast<int>(helpers_.size());
}

void
HostPool::ensureHelpers(int helpers)
{
    // Caller holds mu_. Threads are only ever added: a later job
    // needing fewer workers simply leaves the extras parked.
    while (static_cast<int>(helpers_.size()) < helpers) {
        const int index = static_cast<int>(helpers_.size());
        helpers_.emplace_back([this, index] { helperMain(index); });
    }
}

void
HostPool::recordFailure() noexcept
{
    {
        std::lock_guard<std::mutex> lock(errMu_);
        if (!firstError_)
            firstError_ = std::current_exception();
    }
    failed_.store(true, std::memory_order_release);
}

void
HostPool::claimLoop(int worker)
{
    // Chunked claiming off one shared counter. After a failure the
    // loop stops claiming, so the job drains quickly; tasks already
    // claimed in this chunk are abandoned too — the caller is about
    // to throw, nobody will read their slots.
    while (!failed_.load(std::memory_order_acquire)) {
        const std::size_t begin =
            next_.fetch_add(chunk_, std::memory_order_relaxed);
        if (begin >= count_)
            return;
        const std::size_t end = std::min(count_, begin + chunk_);
        for (std::size_t i = begin; i < end; ++i) {
            if (failed_.load(std::memory_order_acquire))
                return;
            try {
                fn_(ctx_, i, worker);
            } catch (...) {
                recordFailure();
                return;
            }
        }
    }
}

void
HostPool::helperMain(int helper_index)
{
    std::uint64_t seen = 0;
    while (true) {
        {
            std::unique_lock<std::mutex> lock(mu_);
            jobCv_.wait(lock, [this, seen] {
                return stop_ || jobSeq_ != seen;
            });
            if (stop_)
                return;
            seen = jobSeq_;
            if (helper_index >= jobHelpers_)
                continue; // not a participant of this job
        }
        claimLoop(helper_index + 1);
        {
            std::lock_guard<std::mutex> lock(mu_);
            if (--pending_ == 0)
                doneCv_.notify_all();
        }
    }
}

void
HostPool::run(std::size_t count, int max_workers, TaskFn fn, void *ctx)
{
    crw_assert(fn != nullptr);
    if (count == 0)
        return;

    const int workers = static_cast<int>(std::min<std::size_t>(
        count, static_cast<std::size_t>(std::max(1, max_workers))));

    if (g_eventHook)
        g_eventHook(Event::JobStart, count,
                    static_cast<std::uint64_t>(workers));

    failed_.store(false, std::memory_order_relaxed);
    {
        std::lock_guard<std::mutex> lock(errMu_);
        firstError_ = nullptr;
    }

    if (workers <= 1) {
        // Inline: same claim loop, so chunking/failure semantics are
        // identical with and without helpers.
        fn_ = fn;
        ctx_ = ctx;
        count_ = count;
        chunk_ = 1;
        next_.store(0, std::memory_order_relaxed);
        claimLoop(0);
    } else {
        const int helpers = workers - 1;
        {
            std::lock_guard<std::mutex> lock(mu_);
            ensureHelpers(helpers);
            fn_ = fn;
            ctx_ = ctx;
            count_ = count;
            // ~4 chunks per worker balances steal granularity against
            // atomic traffic; tiny jobs degrade to chunk = 1.
            chunk_ = std::max<std::size_t>(
                1, count / (static_cast<std::size_t>(workers) * 4));
            next_.store(0, std::memory_order_relaxed);
            jobHelpers_ = helpers;
            pending_ = helpers;
            ++jobSeq_;
        }
        jobCv_.notify_all();
        claimLoop(0);
        {
            std::unique_lock<std::mutex> lock(mu_);
            doneCv_.wait(lock, [this] { return pending_ == 0; });
        }
    }

    if (g_eventHook)
        g_eventHook(Event::JobEnd, count,
                    static_cast<std::uint64_t>(workers));

    if (failed_.load(std::memory_order_acquire)) {
        std::exception_ptr err;
        {
            std::lock_guard<std::mutex> lock(errMu_);
            err = firstError_;
            firstError_ = nullptr;
        }
        failed_.store(false, std::memory_order_relaxed);
        crw_assert(err != nullptr);
        std::rethrow_exception(err);
    }
}

} // namespace crw
