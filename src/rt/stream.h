/**
 * @file
 * Bounded FIFO byte streams connecting threads.
 *
 * Paper §5.1: "Each stream is FIFO, and is organized as a cyclic
 * buffer... Since the scheduling is non-preemptive, a thread execution
 * continues until an input (output) buffer becomes empty (full)."
 * Buffer capacity is the paper's granularity knob (M and N).
 *
 * Every stream operation is a traced procedure (it allocates a Frame),
 * because on the real machine getc/putc-style calls are exactly where
 * the spell checker's threads spend their window activity and where
 * they block for a context switch.
 */

#ifndef CRW_RT_STREAM_H_
#define CRW_RT_STREAM_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "rt/runtime.h"

namespace crw {

/** Returned by Stream::getByte at end of stream. */
inline constexpr int kEof = -1;

/**
 * A bounded cyclic byte FIFO with blocking semantics and writer-count
 * EOF: the stream is closed once every registered writer called
 * close(), after which readers drain the remaining bytes, then see
 * kEof.
 */
class Stream
{
  public:
    /**
     * @param rt The runtime whose scheduler blocks/wakes threads.
     * @param name For deadlock diagnostics and stats.
     * @param capacity Buffer size in bytes (M or N in the paper).
     * @param num_writers Writers that must close() before EOF.
     */
    Stream(Runtime &rt, std::string name, std::size_t capacity,
           int num_writers = 1);

    Stream(const Stream &) = delete;
    Stream &operator=(const Stream &) = delete;

    /**
     * Append one byte; blocks while the buffer is full. Traced: one
     * Frame per call, like a putc() *function* call on the target.
     */
    void putByte(std::uint8_t byte);

    /** Append a whole string, byte by byte (may block repeatedly). */
    void putBytes(std::string_view bytes);

    /**
     * Remove and return the next byte, blocking while the buffer is
     * empty; kEof once the stream is closed and drained. Traced.
     */
    int getByte();

    /**
     * Write all of @p bytes under a single traced activation — the
     * word-at-a-time copy loop of the paper's kernel I/O threads
     * (T4-T7), whose save counts are ~bytes/4. Blocks as needed.
     */
    void putChunk(std::string_view bytes);

    /**
     * Read exactly @p max bytes (short only at EOF) under a single
     * traced activation; returns the byte count, 0 at EOF. The exact
     * count keeps dynamic save counts independent of buffer sizes
     * (paper Table 1).
     */
    std::size_t getChunk(char *out, std::size_t max);

    /**
     * Read bytes up to and including '\n' (or EOF) into @p line,
     * excluding the newline itself.
     * @return false if the stream ended before any byte was read.
     */
    bool getLine(std::string &line);

    /** One writer is done; the last close() marks EOF. */
    void close();

    std::size_t size() const { return count_; }
    std::size_t capacity() const { return buffer_.size(); }
    bool closed() const { return openWriters_ == 0; }
    const std::string &name() const { return name_; }

    /** Total bytes ever enqueued (for workload accounting). */
    std::uint64_t totalBytes() const { return totalBytes_; }

  private:
    void wakeAll(std::vector<ThreadId> &waiters);

    /** Untraced blocking primitives (the buffered-I/O fast path). */
    void rawPut(std::uint8_t byte);
    int rawGet();

    Runtime &rt_;
    std::string name_;
    /** Capture sink bound at construction (see Runtime::setTraceSink). */
    TraceSink *sink_;
    int sinkId_ = -1;
    std::vector<std::uint8_t> buffer_;
    std::size_t head_ = 0;  // index of the oldest byte
    std::size_t count_ = 0; // bytes currently buffered
    int openWriters_;
    std::uint64_t totalBytes_ = 0;

    std::vector<ThreadId> readWaiters_;
    std::vector<ThreadId> writeWaiters_;
};

} // namespace crw

#endif // CRW_RT_STREAM_H_
