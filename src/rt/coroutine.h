/**
 * @file
 * Stackful coroutines for the user-level thread runtime.
 *
 * The paper's threads are user-level contexts multiplexed on one SPARC
 * by a multi-tasking monitor; here each simulated thread runs real C++
 * code on its own host stack, switched non-preemptively. The simulated
 * machine state (windows, cycles) lives in the WindowEngine — the
 * coroutine carries only the host execution.
 *
 * On x86-64 the switch is a hand-rolled callee-saved-register swap
 * (no syscalls); elsewhere it falls back to ucontext.
 */

#ifndef CRW_RT_COROUTINE_H_
#define CRW_RT_COROUTINE_H_

#include <cstddef>
#include <exception>
#include <functional>
#include <memory>
#include <vector>

namespace crw {

/**
 * One suspendable host execution context.
 *
 * Lifecycle: construct with an entry function; resume() runs it until
 * it calls yieldToMain() or returns; finished() reports completion.
 * An exception escaping the entry function is captured and re-thrown
 * from resume() in the main context.
 */
class Coroutine
{
  public:
    using EntryFn = std::function<void()>;

    explicit Coroutine(EntryFn entry,
                       std::size_t stack_size = 256 * 1024);
    ~Coroutine();

    Coroutine(const Coroutine &) = delete;
    Coroutine &operator=(const Coroutine &) = delete;

    /**
     * Transfer control from the main context into the coroutine.
     * Must not be called from inside any coroutine, or after the
     * coroutine finished.
     */
    void resume();

    /** Transfer control back to main; must be called from inside. */
    void yieldToMain();

    bool finished() const { return finished_; }
    bool started() const { return started_; }

    /** Internal: runs the entry function. Called by the trampoline. */
    void body();

  private:
    struct Impl;

    void start();

    EntryFn entry_;
    std::vector<unsigned char> stack_;
    std::unique_ptr<Impl> impl_;
    std::exception_ptr pending_;
    bool started_ = false;
    bool finished_ = false;
    bool inside_ = false;
};

} // namespace crw

#endif // CRW_RT_COROUTINE_H_
