/**
 * @file
 * Runtime: the façade tying the window engine and the scheduler
 * together, plus the Frame RAII helper that represents one traced
 * procedure activation (a `save`/`restore` pair on SPARC).
 */

#ifndef CRW_RT_RUNTIME_H_
#define CRW_RT_RUNTIME_H_

#include <functional>
#include <string>

#include "rt/scheduler.h"
#include "rt/trace_sink.h"
#include "win/engine.h"

namespace crw {

/** Construction parameters for a Runtime. */
struct RuntimeConfig
{
    EngineConfig engine;
    SchedPolicy policy = SchedPolicy::Fifo;
    /** Compute cycles charged per traced procedure call (prologue,
     *  argument setup — everything except the save/restore itself). */
    Cycles cyclesPerCall = 6;
    std::size_t stackSize = 256 * 1024;
};

/**
 * One simulated multi-threaded machine: a WindowEngine plus a
 * Scheduler sharing it. Application code spawns threads, calls run(),
 * and inside threads brackets procedures with Frame and reports
 * computation with charge().
 */
class Runtime
{
  public:
    explicit Runtime(const RuntimeConfig &config);

    Runtime(const Runtime &) = delete;
    Runtime &operator=(const Runtime &) = delete;

    ThreadId
    spawn(std::string name, std::function<void()> body,
          std::uint8_t priority = 0)
    {
        return sched_.spawn(std::move(name), std::move(body), priority);
    }

    /** Run all spawned threads to completion. */
    void run() { sched_.run(); }

    /** Charge ordinary computation cycles to the simulated clock. */
    void
    charge(Cycles cycles)
    {
        engine_.charge(cycles);
        if (sink_)
            sink_->recordCharge(requireCaptureThread(), cycles);
    }

    /**
     * Install a capture sink (nullptr to remove). Must be installed
     * *before* the application constructs its streams and spawns its
     * threads, so every stream and thread is registered. Not owned.
     */
    void
    setTraceSink(TraceSink *sink)
    {
        sink_ = sink;
        sched_.setTraceSink(sink);
    }

    TraceSink *traceSink() const { return sink_; }

    WindowEngine &engine() { return engine_; }
    const WindowEngine &engine() const { return engine_; }
    Scheduler &scheduler() { return sched_; }
    const Scheduler &scheduler() const { return sched_; }

    Cycles cyclesPerCall() const { return cyclesPerCall_; }
    Cycles now() const { return engine_.now(); }

  private:
    /** Capture requires a thread context; enforced in runtime.cc. */
    ThreadId requireCaptureThread() const;

    WindowEngine engine_;
    Scheduler sched_;
    Cycles cyclesPerCall_;
    TraceSink *sink_ = nullptr;
};

/**
 * RAII for one traced procedure activation: the constructor executes
 * the `save` (possibly overflow-trapping), the destructor the
 * `restore` (possibly underflow-trapping). Application code creates
 * one at the top of every function whose activation record would live
 * in a register window.
 */
class Frame
{
  public:
    explicit Frame(Runtime &rt)
        : rt_(rt)
    {
        rt_.engine().save();
        if (TraceSink *sink = rt_.traceSink())
            sink->recordSave(rt_.engine().current());
        rt_.charge(rt_.cyclesPerCall());
    }

    ~Frame()
    {
        rt_.engine().restore();
        if (TraceSink *sink = rt_.traceSink())
            sink->recordRestore(rt_.engine().current());
    }

    Frame(const Frame &) = delete;
    Frame &operator=(const Frame &) = delete;

  private:
    Runtime &rt_;
};

} // namespace crw

#endif // CRW_RT_RUNTIME_H_
