/**
 * @file
 * Non-preemptive user-level thread scheduler.
 *
 * Scheduling follows the paper's evaluation setup (§4.5/§4.6): it is
 * non-preemptive, with queue placement delegated to a policy object
 * (rt/sched_core.h) — FIFO, the §4.6 working-set refinement (a thread
 * awoken while its windows are still resident jumps to the *front* of
 * the ready queue), static priorities, and variants thereof.
 *
 * The mechanism and policy layer live in SchedCore / SchedPolicyBox
 * (rt/sched_core.h) so the trace ReplayDriver can reuse them without
 * coroutines; this class adds the live side: thread objects, stackful
 * coroutines, and the dispatch loop. Because the live scheduler is
 * non-preemptive (and the trace recorder coalesces adjacent charges),
 * the RoundRobin quantum is a *replay-time* construct: live RR is
 * placement-only, identical to FIFO. All other policies behave the
 * same live and under replay.
 *
 * Every actual dispatch is reported to the WindowEngine as a context
 * switch, so switch costs and window motion are charged exactly where
 * the paper's monitor would run its switch routine.
 */

#ifndef CRW_RT_SCHEDULER_H_
#define CRW_RT_SCHEDULER_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/stats.h"
#include "common/types.h"
#include "rt/coroutine.h"
#include "rt/sched_core.h"
#include "rt/trace_sink.h"
#include "win/engine.h"

namespace crw {

/** Lifecycle state of a simulated thread. */
enum class ThreadState {
    Ready,    ///< in the ready queue
    Running,  ///< currently executing
    Blocked,  ///< waiting on a stream (or explicit block)
    Finished, ///< body returned
};

/**
 * The scheduler. Owns the simulated threads and the dispatch loop.
 *
 * Usage: spawn() threads, then run() from the main context; run()
 * returns when every thread finished (or throws FatalError on
 * deadlock). Threads interact through blockCurrent()/wake(), usually
 * via Stream.
 */
class Scheduler
{
  public:
    Scheduler(WindowEngine &engine, SchedPolicy policy,
              std::size_t stack_size = 256 * 1024);
    ~Scheduler();

    Scheduler(const Scheduler &) = delete;
    Scheduler &operator=(const Scheduler &) = delete;

    /**
     * Create a thread; it starts Ready, placed by the policy (FIFO
     * back of the queue; Priority at its level). @p priority is the
     * static priority recorded into the trace (0 = default; higher
     * runs first under SchedPolicy::Priority, ignored elsewhere).
     */
    ThreadId spawn(std::string name, std::function<void()> body,
                   std::uint8_t priority = 0);

    /** Dispatch until all threads finish. Main-context only. */
    void run();

    /**
     * Block the running thread on @p waitlist (the caller appends the
     * id; this parks the coroutine) and dispatch another thread.
     * Thread-context only.
     */
    void blockCurrent(std::vector<ThreadId> &waitlist);

    /**
     * Move a Blocked thread to the ready queue (position depends on
     * the policy). Ignores ids in other states so streams may wake
     * generously.
     */
    void wake(ThreadId tid);

    /** Id of the running thread; kNoThread from the main context. */
    ThreadId currentId() const { return running_; }

    ThreadState state(ThreadId tid) const;
    const std::string &nameOf(ThreadId tid) const;
    int numThreads() const { return static_cast<int>(threads_.size()); }

    SchedPolicy policy() const { return core_.policy(); }

    /**
     * Ready-queue length statistics sampled at every dispatch — the
     * paper's "parallel slackness" (§5).
     */
    const Distribution &slackness() const { return core_.slackness(); }

    /** Dispatch count (= engine context switches + same-thread skips). */
    std::uint64_t dispatches() const { return core_.dispatches(); }

    /** Capture hook for thread-exit events (installed by Runtime). */
    void setTraceSink(TraceSink *sink) { sink_ = sink; }

  private:
    struct Thread
    {
        ThreadId id;
        std::string name;
        ThreadState state;
        std::unique_ptr<Coroutine> coro;
    };

    Thread &thread(ThreadId tid);
    const Thread &thread(ThreadId tid) const;
    void dispatch(ThreadId tid);

    WindowEngine &engine_;
    SchedCore core_;
    SchedPolicyBox policy_;
    std::size_t stackSize_;

    std::vector<Thread> threads_;
    ThreadId running_ = kNoThread;
    bool inRun_ = false;
    TraceSink *sink_ = nullptr;
};

} // namespace crw

#endif // CRW_RT_SCHEDULER_H_
