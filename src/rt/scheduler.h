/**
 * @file
 * Non-preemptive user-level thread scheduler.
 *
 * Scheduling follows the paper's evaluation setup (§4.5/§4.6): it is
 * non-preemptive and FIFO, with an optional working-set refinement —
 * a thread awoken while its windows are still resident is enqueued at
 * the *front* of the ready queue, otherwise at the back, steering the
 * concurrently-scheduled working set to fit the physical window file.
 *
 * The queue-placement policy itself lives in SchedCore
 * (rt/sched_core.h) so the trace ReplayDriver can reuse it without
 * coroutines; this class adds the live side: thread objects, stackful
 * coroutines, and the dispatch loop.
 *
 * Every actual dispatch is reported to the WindowEngine as a context
 * switch, so switch costs and window motion are charged exactly where
 * the paper's monitor would run its switch routine.
 */

#ifndef CRW_RT_SCHEDULER_H_
#define CRW_RT_SCHEDULER_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/stats.h"
#include "common/types.h"
#include "rt/coroutine.h"
#include "rt/sched_core.h"
#include "rt/trace_sink.h"
#include "win/engine.h"

namespace crw {

/** Lifecycle state of a simulated thread. */
enum class ThreadState {
    Ready,    ///< in the ready queue
    Running,  ///< currently executing
    Blocked,  ///< waiting on a stream (or explicit block)
    Finished, ///< body returned
};

/**
 * The scheduler. Owns the simulated threads and the dispatch loop.
 *
 * Usage: spawn() threads, then run() from the main context; run()
 * returns when every thread finished (or throws FatalError on
 * deadlock). Threads interact through blockCurrent()/wake(), usually
 * via Stream.
 */
class Scheduler
{
  public:
    Scheduler(WindowEngine &engine, SchedPolicy policy,
              std::size_t stack_size = 256 * 1024);
    ~Scheduler();

    Scheduler(const Scheduler &) = delete;
    Scheduler &operator=(const Scheduler &) = delete;

    /** Create a thread; it starts Ready, at the back of the queue. */
    ThreadId spawn(std::string name, std::function<void()> body);

    /** Dispatch until all threads finish. Main-context only. */
    void run();

    /**
     * Block the running thread on @p waitlist (the caller appends the
     * id; this parks the coroutine) and dispatch another thread.
     * Thread-context only.
     */
    void blockCurrent(std::vector<ThreadId> &waitlist);

    /**
     * Move a Blocked thread to the ready queue (position depends on
     * the policy). Ignores ids in other states so streams may wake
     * generously.
     */
    void wake(ThreadId tid);

    /** Id of the running thread; kNoThread from the main context. */
    ThreadId currentId() const { return running_; }

    ThreadState state(ThreadId tid) const;
    const std::string &nameOf(ThreadId tid) const;
    int numThreads() const { return static_cast<int>(threads_.size()); }

    SchedPolicy policy() const { return core_.policy(); }

    /**
     * Ready-queue length statistics sampled at every dispatch — the
     * paper's "parallel slackness" (§5).
     */
    const Distribution &slackness() const { return core_.slackness(); }

    /** Dispatch count (= engine context switches + same-thread skips). */
    std::uint64_t dispatches() const { return core_.dispatches(); }

    /** Capture hook for thread-exit events (installed by Runtime). */
    void setTraceSink(TraceSink *sink) { sink_ = sink; }

  private:
    struct Thread
    {
        ThreadId id;
        std::string name;
        ThreadState state;
        std::unique_ptr<Coroutine> coro;
    };

    Thread &thread(ThreadId tid);
    const Thread &thread(ThreadId tid) const;
    void dispatch(ThreadId tid);

    WindowEngine &engine_;
    SchedCore core_;
    std::size_t stackSize_;

    std::vector<Thread> threads_;
    ThreadId running_ = kNoThread;
    bool inRun_ = false;
    TraceSink *sink_ = nullptr;
};

} // namespace crw

#endif // CRW_RT_SCHEDULER_H_
