#include "rt/coroutine.h"

#include "common/logging.h"

// On x86-64 we use a minimal hand-rolled stack switch: ucontext's
// swapcontext performs a sigprocmask system call on every switch,
// which dominates fine-grain simulations (hundreds of thousands of
// context switches per run). The fast path saves/restores only the
// SysV callee-saved registers. Other architectures fall back to
// ucontext.

#if defined(__x86_64__)
#define CRW_FAST_FIBERS 1
#else
#define CRW_FAST_FIBERS 0
#include <ucontext.h>
#endif

namespace crw {

namespace {

/**
 * The coroutine about to start, published for the trampoline's first
 * activation (the scheduler is single-host-threaded, so one slot is
 * enough).
 */
Coroutine *g_starting = nullptr;

} // namespace

#if CRW_FAST_FIBERS

extern "C" void crwSwapStack(void **save_sp, void *load_sp);

// Save the six SysV callee-saved GPRs on the current stack, stash the
// stack pointer through save_sp, switch to load_sp, restore, return.
// The FP control words (mxcsr/x87 cw) are not modified anywhere in
// crw, so they are intentionally not saved.
__asm__(
    ".text\n"
    ".align 16\n"
    ".globl crwSwapStack\n"
    ".type crwSwapStack,@function\n"
    "crwSwapStack:\n"
    "    pushq %rbp\n"
    "    pushq %rbx\n"
    "    pushq %r12\n"
    "    pushq %r13\n"
    "    pushq %r14\n"
    "    pushq %r15\n"
    "    movq %rsp, (%rdi)\n"
    "    movq %rsi, %rsp\n"
    "    popq %r15\n"
    "    popq %r14\n"
    "    popq %r13\n"
    "    popq %r12\n"
    "    popq %rbx\n"
    "    popq %rbp\n"
    "    ret\n"
    ".size crwSwapStack,.-crwSwapStack\n");

#endif // CRW_FAST_FIBERS

struct Coroutine::Impl
{
#if CRW_FAST_FIBERS
    void *coroSp = nullptr; ///< saved rsp while suspended
    void *mainSp = nullptr; ///< saved rsp of the resuming context
#else
    ucontext_t context;
    ucontext_t mainContext;
#endif
};

extern "C" void
crwCoroutineTrampoline()
{
    Coroutine *self = g_starting;
    g_starting = nullptr;
    self->body();
    crw_unreachable("coroutine body returned to trampoline");
}

Coroutine::Coroutine(EntryFn entry, std::size_t stack_size)
    : entry_(std::move(entry)),
      stack_(stack_size),
      impl_(std::make_unique<Impl>())
{
    crw_assert(entry_ != nullptr);
    crw_assert(stack_size >= 16 * 1024);
}

Coroutine::~Coroutine()
{
    if (started_ && !finished_) {
        // Abandoning a live coroutine leaks whatever is on its stack;
        // tolerated during error teardown but worth a loud note.
        crw_warn << "coroutine destroyed while suspended";
    }
}

void
Coroutine::body()
{
    try {
        entry_();
    } catch (...) {
        pending_ = std::current_exception();
    }
    finished_ = true;
    inside_ = false;
#if CRW_FAST_FIBERS
    crwSwapStack(&impl_->coroSp, impl_->mainSp);
#else
    swapcontext(&impl_->context, &impl_->mainContext);
#endif
    crw_unreachable("finished coroutine resumed");
}

void
Coroutine::start()
{
#if CRW_FAST_FIBERS
    // Build an initial stack image that crwSwapStack can "return"
    // into: six zeroed callee-saved slots, then the trampoline as the
    // ret target. SysV requires rsp % 16 == 8 at function entry, i.e.
    // the ret-target slot must sit at a 16-byte-aligned address.
    auto top = reinterpret_cast<std::uintptr_t>(stack_.data()) +
               stack_.size();
    top &= ~static_cast<std::uintptr_t>(15);
    auto *slots = reinterpret_cast<void **>(top);
    slots[-2] = reinterpret_cast<void *>(&crwCoroutineTrampoline);
    for (int i = 3; i <= 8; ++i)
        slots[-i] = nullptr; // rbp, rbx, r12..r15
    impl_->coroSp = static_cast<void *>(slots - 8);
#else
    if (getcontext(&impl_->context) != 0)
        crw_fatal << "getcontext failed";
    impl_->context.uc_stack.ss_sp = stack_.data();
    impl_->context.uc_stack.ss_size = stack_.size();
    impl_->context.uc_link = nullptr;
    makecontext(&impl_->context, &crwCoroutineTrampoline, 0);
#endif
}

void
Coroutine::resume()
{
    crw_assert(!finished_);
    crw_assert(!inside_);
    if (!started_) {
        started_ = true;
        start();
        g_starting = this;
    }
    inside_ = true;
#if CRW_FAST_FIBERS
    crwSwapStack(&impl_->mainSp, impl_->coroSp);
#else
    if (swapcontext(&impl_->mainContext, &impl_->context) != 0)
        crw_fatal << "swapcontext into coroutine failed";
#endif
    if (pending_) {
        auto p = pending_;
        pending_ = nullptr;
        std::rethrow_exception(p);
    }
}

void
Coroutine::yieldToMain()
{
    crw_assert(inside_);
    inside_ = false;
#if CRW_FAST_FIBERS
    crwSwapStack(&impl_->coroSp, impl_->mainSp);
#else
    if (swapcontext(&impl_->context, &impl_->mainContext) != 0)
        crw_fatal << "swapcontext to main failed";
#endif
    inside_ = true;
}

} // namespace crw
