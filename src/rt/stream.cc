#include "rt/stream.h"

#include "common/logging.h"

namespace crw {

Stream::Stream(Runtime &rt, std::string name, std::size_t capacity,
               int num_writers)
    : rt_(rt),
      name_(std::move(name)),
      sink_(rt.traceSink()),
      buffer_(capacity),
      openWriters_(num_writers)
{
    if (capacity == 0)
        crw_fatal << "stream " << name_ << ": capacity must be >= 1";
    if (num_writers < 1)
        crw_fatal << "stream " << name_ << ": needs >= 1 writer";
    if (sink_)
        sinkId_ = sink_->onStreamCreate(name_, capacity, num_writers);
}

void
Stream::wakeAll(std::vector<ThreadId> &waiters)
{
    // Wake-all with re-check on the woken side: simple and safe under
    // non-preemptive scheduling.
    for (const ThreadId tid : waiters)
        rt_.scheduler().wake(tid);
    waiters.clear();
}

void
Stream::rawPut(std::uint8_t byte)
{
    if (sink_)
        sink_->recordPut(rt_.scheduler().currentId(), sinkId_);
    if (closed())
        crw_panic << "write to closed stream " << name_;
    while (count_ == buffer_.size()) {
        wakeAll(readWaiters_); // data is available for any reader
        rt_.scheduler().blockCurrent(writeWaiters_);
        if (closed())
            crw_panic << "stream " << name_ << " closed while writing";
    }
    buffer_[(head_ + count_) % buffer_.size()] = byte;
    ++count_;
    ++totalBytes_;
    wakeAll(readWaiters_);
}

int
Stream::rawGet()
{
    if (sink_)
        sink_->recordGet(rt_.scheduler().currentId(), sinkId_);
    while (count_ == 0) {
        if (closed())
            return kEof;
        wakeAll(writeWaiters_); // space is available for any writer
        rt_.scheduler().blockCurrent(readWaiters_);
    }
    const std::uint8_t byte = buffer_[head_];
    head_ = (head_ + 1) % buffer_.size();
    --count_;
    wakeAll(writeWaiters_);
    return byte;
}

void
Stream::putByte(std::uint8_t byte)
{
    Frame frame(rt_); // putc() is a real call on the target machine
    rt_.charge(2);
    rawPut(byte);
}

void
Stream::putBytes(std::string_view bytes)
{
    for (const char ch : bytes)
        putByte(static_cast<std::uint8_t>(ch));
}

int
Stream::getByte()
{
    Frame frame(rt_); // getc() likewise
    rt_.charge(2);
    return rawGet();
}

void
Stream::putChunk(std::string_view bytes)
{
    Frame frame(rt_); // one word-copy activation
    rt_.charge(2 + static_cast<Cycles>(bytes.size()));
    for (const char ch : bytes)
        rawPut(static_cast<std::uint8_t>(ch));
}

std::size_t
Stream::getChunk(char *out, std::size_t max)
{
    Frame frame(rt_);
    rt_.charge(2 + static_cast<Cycles>(max));
    std::size_t got = 0;
    while (got < max) {
        const int c = rawGet();
        if (c == kEof)
            break;
        out[got++] = static_cast<char>(c);
    }
    return got;
}

bool
Stream::getLine(std::string &line)
{
    Frame frame(rt_);
    line.clear();
    while (true) {
        const int c = getByte();
        if (c == kEof)
            return !line.empty();
        if (c == '\n')
            return true;
        line.push_back(static_cast<char>(c));
    }
}

void
Stream::close()
{
    Frame frame(rt_);
    if (sink_)
        sink_->recordClose(rt_.scheduler().currentId(), sinkId_);
    if (openWriters_ <= 0)
        crw_panic << "stream " << name_ << " closed too many times";
    --openWriters_;
    if (openWriters_ == 0) {
        // EOF became observable: release any blocked readers.
        wakeAll(readWaiters_);
    }
}

} // namespace crw
