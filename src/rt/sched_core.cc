#include "rt/sched_core.h"

namespace crw {

const char *
policyName(SchedPolicy policy)
{
    switch (policy) {
    case SchedPolicy::Fifo:
        return "FIFO";
    case SchedPolicy::WorkingSet:
        return "WS";
    case SchedPolicy::RoundRobin:
        return "RR";
    case SchedPolicy::Priority:
        return "PRI";
    case SchedPolicy::WorkingSetAged:
        return "WSA";
    }
    return "?";
}

bool
parsePolicyName(std::string_view name, SchedPolicy &out)
{
    for (const SchedPolicy policy : allSchedPolicies()) {
        if (name == policyName(policy)) {
            out = policy;
            return true;
        }
    }
    return false;
}

const std::vector<SchedPolicy> &
allSchedPolicies()
{
    static const std::vector<SchedPolicy> kAll = {
        SchedPolicy::Fifo,       SchedPolicy::WorkingSet,
        SchedPolicy::RoundRobin, SchedPolicy::Priority,
        SchedPolicy::WorkingSetAged,
    };
    return kAll;
}

SchedPolicyBox::SchedPolicyBox(SchedPolicy kind)
    : kind_(kind)
{
    switch (kind) {
    case SchedPolicy::Fifo:
        impl_ = FifoPolicy{};
        break;
    case SchedPolicy::WorkingSet:
        impl_ = WorkingSetPolicy{};
        break;
    case SchedPolicy::RoundRobin:
        impl_ = RoundRobinPolicy{};
        break;
    case SchedPolicy::Priority:
        impl_ = PriorityPolicy{};
        break;
    case SchedPolicy::WorkingSetAged:
        impl_ = WorkingSetAgedPolicy{};
        break;
    }
}

} // namespace crw
