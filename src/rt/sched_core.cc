#include "rt/sched_core.h"

namespace crw {

const char *
policyName(SchedPolicy policy)
{
    switch (policy) {
      case SchedPolicy::Fifo:       return "FIFO";
      case SchedPolicy::WorkingSet: return "WS";
    }
    return "?";
}

} // namespace crw
