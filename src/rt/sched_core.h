/**
 * @file
 * SchedCore: the pure scheduling-policy core shared by the live
 * coroutine Scheduler (src/rt/scheduler.h) and the trace ReplayDriver
 * (src/trace/replay_driver.h).
 *
 * The paper's ready-queue policies (§4.5 FIFO, §4.6 working set) are
 * decisions about *queue placement only*; they do not need coroutines,
 * thread objects or streams. Extracting them here lets a captured
 * event trace be re-scheduled against any (scheme, window-count,
 * policy) combination: the working-set refinement consults *engine
 * residency at the moment of the wake*, which the caller passes in, so
 * replay reproduces exactly the decisions a live run would make.
 */

#ifndef CRW_RT_SCHED_CORE_H_
#define CRW_RT_SCHED_CORE_H_

#include <cstdint>
#include <vector>

#include "common/logging.h"
#include "common/stats.h"
#include "common/types.h"

namespace crw {

/**
 * Fixed-policy double-ended ring buffer backing the ready queue. A
 * std::deque spends the dispatch loop's time in block-map bookkeeping;
 * the queue holds at most one entry per application thread, so a
 * power-of-two ring that doubles on the rare overflow makes every
 * push/pop a masked index bump. Operation order is exactly deque
 * order — the scheduling policies depend on it.
 */
class ReadyRing
{
  public:
    bool empty() const { return size_ == 0; }
    std::size_t size() const { return size_; }

    ThreadId
    front() const
    {
        crw_assert(size_ > 0);
        return buf_[head_];
    }

    void
    push_back(ThreadId tid)
    {
        if (size_ > mask_)
            grow();
        buf_[(head_ + size_) & mask_] = tid;
        ++size_;
    }

    void
    push_front(ThreadId tid)
    {
        if (size_ > mask_)
            grow();
        head_ = (head_ - 1) & mask_;
        buf_[head_] = tid;
        ++size_;
    }

    ThreadId
    pop_front()
    {
        crw_assert(size_ > 0);
        const ThreadId tid = buf_[head_];
        head_ = (head_ + 1) & mask_;
        --size_;
        return tid;
    }

  private:
    void
    grow()
    {
        std::vector<ThreadId> next(buf_.size() * 2);
        for (std::size_t i = 0; i < size_; ++i)
            next[i] = buf_[(head_ + i) & mask_];
        buf_ = std::move(next);
        mask_ = buf_.size() - 1;
        head_ = 0;
    }

    std::vector<ThreadId> buf_ = std::vector<ThreadId>(16);
    std::size_t mask_ = 15; // buf_.size() - 1, cached off the hot loads
    std::size_t head_ = 0;
    std::size_t size_ = 0;
};

/** Ready-queue policy, paper §4.6. */
enum class SchedPolicy {
    Fifo,       ///< plain first-in first-out
    WorkingSet, ///< awoken-and-resident threads jump the queue
};

const char *policyName(SchedPolicy policy);

/**
 * The ready queue plus the dispatch-order bookkeeping the paper's
 * evaluation reports. Thread lifecycle state (Ready/Blocked/...) stays
 * with the driver (live Scheduler or ReplayDriver); SchedCore only
 * sees ids of ready threads.
 */
class SchedCore
{
  public:
    explicit SchedCore(SchedPolicy policy)
        : policy_(policy)
    {}

    SchedPolicy policy() const { return policy_; }

    /** Enqueue a newly spawned thread (always at the back). */
    void
    enqueueBack(ThreadId tid)
    {
        ready_.push_back(tid);
        notePeak();
    }

    /**
     * Enqueue an awoken thread. §4.6: under the working-set policy a
     * thread whose windows are still resident jumps to the *front* of
     * the queue; everything else goes to the back.
     *
     * @param windows_resident Whether the engine still holds at least
     *        one window of @p tid (WindowEngine::isResident, evaluated
     *        by the caller at wake time).
     */
    void
    wake(ThreadId tid, bool windows_resident)
    {
        if (policy_ == SchedPolicy::WorkingSet && windows_resident)
            ready_.push_front(tid);
        else
            ready_.push_back(tid);
        notePeak();
    }

    bool idle() const { return ready_.empty(); }

    /**
     * Pop the next thread to run. Samples "parallel slackness"
     * (paper §5: threads available for execution right now, excluding
     * the one being dispatched) and counts the dispatch.
     */
    ThreadId
    dispatchNext()
    {
        const ThreadId tid = ready_.pop_front();
        slackness_.sample(static_cast<double>(ready_.size()));
        ++dispatches_;
        return tid;
    }

    /** Ready-queue length sampled at every dispatch (paper §5). */
    const Distribution &slackness() const { return slackness_; }

    /** Dispatch count (= context switches + same-thread skips). */
    std::uint64_t dispatches() const { return dispatches_; }

    /** High-water mark of the ready queue over the whole run. */
    std::size_t peakReady() const { return peakReady_; }

  private:
    void
    notePeak()
    {
        // Kept as a (rarely taken) branch: the peak settles within the
        // first few dispatches, after which this predicts perfectly.
        if (ready_.size() > peakReady_)
            peakReady_ = ready_.size();
    }

    SchedPolicy policy_;
    ReadyRing ready_;
    Distribution slackness_;
    std::uint64_t dispatches_ = 0;
    std::size_t peakReady_ = 0;
};

} // namespace crw

#endif // CRW_RT_SCHED_CORE_H_
