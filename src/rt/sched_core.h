/**
 * @file
 * SchedCore: the pure scheduling mechanism shared by the live
 * coroutine Scheduler (src/rt/scheduler.h) and the trace ReplayDriver
 * (src/trace/replay_driver.h), plus the pluggable policy layer that
 * drives it.
 *
 * The paper's ready-queue policies (§4.5 FIFO, §4.6 working set) are
 * decisions about *queue placement only*; they do not need coroutines,
 * thread objects or streams. Extracting them here lets a captured
 * event trace be re-scheduled against any (scheme, window-count,
 * policy) combination: the working-set refinement consults *engine
 * residency at the moment of the wake*, which the caller passes in, so
 * replay reproduces exactly the decisions a live run would make.
 *
 * Mechanism vs policy split: SchedCore owns the ready structure (a
 * small fixed set of priority levels, each a ReadyRing) and the
 * dispatch-order bookkeeping, and exposes only placement verbs
 * (enqueueBack / enqueueFront at a level). Every *decision* — front
 * jump or back, which level, when a quantum expires — lives in one of
 * the policy classes below. The hot replay loops are templated on the
 * concrete policy type (mirroring the SchemeT pattern of
 * FastEngineView / BatchedEngineView) so placement compiles down to
 * the same straight-line code the old two-way branch produced; the
 * live Scheduler and the legacy oracle dispatch through SchedPolicyBox
 * (a std::variant) where the indirection is off any hot path.
 */

#ifndef CRW_RT_SCHED_CORE_H_
#define CRW_RT_SCHED_CORE_H_

#include <bit>
#include <cstdint>
#include <string_view>
#include <variant>
#include <vector>

#include "common/logging.h"
#include "common/stats.h"
#include "common/types.h"

namespace crw {

/**
 * Fixed-policy double-ended ring buffer backing the ready queue. A
 * std::deque spends the dispatch loop's time in block-map bookkeeping;
 * the queue holds at most one entry per application thread, so a
 * power-of-two ring that doubles on the rare overflow makes every
 * push/pop a masked index bump. Operation order is exactly deque
 * order — the scheduling policies depend on it.
 */
class ReadyRing
{
  public:
    bool empty() const { return size_ == 0; }
    std::size_t size() const { return size_; }

    ThreadId
    front() const
    {
        crw_assert(size_ > 0);
        return buf_[head_];
    }

    void
    push_back(ThreadId tid)
    {
        if (size_ > mask_)
            grow();
        buf_[(head_ + size_) & mask_] = tid;
        ++size_;
    }

    void
    push_front(ThreadId tid)
    {
        if (size_ > mask_)
            grow();
        head_ = (head_ - 1) & mask_;
        buf_[head_] = tid;
        ++size_;
    }

    ThreadId
    pop_front()
    {
        crw_assert(size_ > 0);
        const ThreadId tid = buf_[head_];
        head_ = (head_ + 1) & mask_;
        --size_;
        return tid;
    }

  private:
    void
    grow()
    {
        std::vector<ThreadId> next(buf_.size() * 2);
        for (std::size_t i = 0; i < size_; ++i)
            next[i] = buf_[(head_ + i) & mask_];
        buf_ = std::move(next);
        mask_ = buf_.size() - 1;
        head_ = 0;
    }

    std::vector<ThreadId> buf_ = std::vector<ThreadId>(16);
    std::size_t mask_ = 15; // buf_.size() - 1, cached off the hot loads
    std::size_t head_ = 0;
    std::size_t size_ = 0;
};

/** Ready-queue policy family (paper §4.5/§4.6 plus extensions). */
enum class SchedPolicy {
    Fifo,           ///< plain first-in first-out
    WorkingSet,     ///< awoken-and-resident threads jump the queue
    RoundRobin,     ///< FIFO + a charged-cycle preemption quantum
    Priority,       ///< static per-thread priority levels
    WorkingSetAged, ///< working set, but front jumps age out
};

/** Canonical short name: "FIFO", "WS", "RR", "PRI", "WSA". The names
 *  key the persistent result cache — never reuse one across enum
 *  values. */
const char *policyName(SchedPolicy policy);

/** Inverse of policyName; returns false on an unknown name. */
bool parsePolicyName(std::string_view name, SchedPolicy &out);

/** Every policy, in enum order (sweep menus, differential tests). */
const std::vector<SchedPolicy> &allSchedPolicies();

/** Whether wake placement consults window residency (WS, WSA). The
 *  batched lockstep loop records a WakeCheck checkpoint per wake for
 *  exactly these policies. */
constexpr bool
policyUsesResidency(SchedPolicy policy)
{
    return policy == SchedPolicy::WorkingSet ||
           policy == SchedPolicy::WorkingSetAged;
}

/**
 * The ready structure plus the dispatch-order bookkeeping the paper's
 * evaluation reports. Thread lifecycle state (Ready/Blocked/...) stays
 * with the driver (live Scheduler or ReplayDriver); SchedCore only
 * sees ids of ready threads and the placement verbs a policy object
 * invokes. It never branches on the policy itself.
 */
class SchedCore
{
  public:
    /** Distinct priority levels (Priority policy); level 0 is the
     *  default queue every other policy uses exclusively. */
    static constexpr int kNumLevels = 8;

    explicit SchedCore(SchedPolicy policy)
        : policy_(policy)
    {}

    /** The policy label this core runs under (metrics/diagnostics;
     *  the placement logic lives in the policy object). */
    SchedPolicy policy() const { return policy_; }

    /** Enqueue at the back of @p level's queue. */
    void
    enqueueBack(ThreadId tid, int level = 0)
    {
        crw_assert(level >= 0 && level < kNumLevels);
        levels_[level].push_back(tid);
        nonEmpty_ |= 1u << level;
        ++count_;
        notePeak();
    }

    /** Enqueue at the front of @p level's queue (working-set jump). */
    void
    enqueueFront(ThreadId tid, int level = 0)
    {
        crw_assert(level >= 0 && level < kNumLevels);
        levels_[level].push_front(tid);
        nonEmpty_ |= 1u << level;
        ++count_;
        notePeak();
    }

    bool idle() const { return count_ == 0; }

    /**
     * Pop the next thread to run: front of the highest non-empty
     * level. Samples "parallel slackness" (paper §5: threads available
     * for execution right now, excluding the one being dispatched)
     * and counts the dispatch.
     */
    ThreadId
    dispatchNext()
    {
        crw_assert(count_ > 0);
        const int level = std::bit_width(nonEmpty_) - 1;
        ReadyRing &ring = levels_[level];
        const ThreadId tid = ring.pop_front();
        if (ring.empty())
            nonEmpty_ &= ~(1u << level);
        --count_;
        slackness_.sample(static_cast<double>(count_));
        ++dispatches_;
        return tid;
    }

    /** Ready-queue length sampled at every dispatch (paper §5). */
    const Distribution &slackness() const { return slackness_; }

    /** Dispatch count (= context switches + same-thread skips). */
    std::uint64_t dispatches() const { return dispatches_; }

    /** High-water mark of the ready queue over the whole run. */
    std::size_t peakReady() const { return peakReady_; }

    /** Total ready threads right now, across all levels. */
    std::size_t readyCount() const { return count_; }

    // Policy-outcome tallies. The policy object calls note*() as it
    // places threads; obs publishes them per point (publishSchedCore)
    // so a sweep can show *why* two policies diverge, not just that
    // they do.

    void noteWakeFront() { ++wakesFront_; }
    void noteWakeBack() { ++wakesBack_; }
    void noteQuantumYield() { ++quantumYields_; }

    /** Wakes placed at the queue front (working-set jumps). */
    std::uint64_t wakesFront() const { return wakesFront_; }
    /** Wakes placed at the queue back. */
    std::uint64_t wakesBack() const { return wakesBack_; }
    /** Preemptions forced by an expired round-robin quantum. */
    std::uint64_t quantumYields() const { return quantumYields_; }

  private:
    void
    notePeak()
    {
        // Kept as a (rarely taken) branch: the peak settles within the
        // first few dispatches, after which this predicts perfectly.
        if (count_ > peakReady_)
            peakReady_ = count_;
    }

    SchedPolicy policy_;
    ReadyRing levels_[kNumLevels];
    std::uint32_t nonEmpty_ = 0; ///< bit L set <=> levels_[L] non-empty
    std::size_t count_ = 0;      ///< total entries across levels
    Distribution slackness_;
    std::uint64_t dispatches_ = 0;
    std::size_t peakReady_ = 0;
    std::uint64_t wakesFront_ = 0;
    std::uint64_t wakesBack_ = 0;
    std::uint64_t quantumYields_ = 0;
};

// ---------------------------------------------------------------------
// The policy layer. Each policy is a small value type with constexpr
// traits the templated replay loops branch on at compile time:
//
//   kKind          the SchedPolicy value it implements
//   kUsesResidency wake() consults the residency bit (WS family)
//   kHasQuantum    charges accumulate toward a preemption quantum (RR)
//
// Shared verbs (every policy):
//   noteSpawn(tid, priority)  static per-thread attributes, called
//                             once per thread before any placement
//   onSpawn(core, tid)        initial ready-queue placement
//   wake(core, tid, resident) placement of an awoken thread
//
// Quantum verbs (kHasQuantum only; the box stubs them for the rest):
//   resetQuantum()            at every dispatch
//   chargeExpires(cycles)     accumulate; true once the quantum is hit
//   onQuantumExpiry(core,tid) re-enqueue the preempted thread
//
// Determinism contract: a policy may keep internal state (ages,
// quantum balance) but may read *only* lane-invariant inputs — trace
// operands, the residency bit the caller derived, and its own state.
// That keeps every policy bit-identical across the legacy, fast and
// batched replay paths, and keeps RR lockstep-batchable (charge
// operands come from the shared trace, not per-lane engine state).
// ---------------------------------------------------------------------

/** Plain FIFO: every placement at the back of level 0 (paper §4.5). */
class FifoPolicy
{
  public:
    static constexpr SchedPolicy kKind = SchedPolicy::Fifo;
    static constexpr bool kUsesResidency = false;
    static constexpr bool kHasQuantum = false;

    void noteSpawn(ThreadId, std::uint8_t) {}
    void onSpawn(SchedCore &core, ThreadId tid) { core.enqueueBack(tid); }

    void
    wake(SchedCore &core, ThreadId tid, bool /*resident*/)
    {
        core.noteWakeBack();
        core.enqueueBack(tid);
    }
};

/** §4.6 working set: an awoken thread whose windows are still
 *  resident jumps to the *front* of the queue, so it runs before its
 *  windows can be evicted. */
class WorkingSetPolicy
{
  public:
    static constexpr SchedPolicy kKind = SchedPolicy::WorkingSet;
    static constexpr bool kUsesResidency = true;
    static constexpr bool kHasQuantum = false;

    void noteSpawn(ThreadId, std::uint8_t) {}
    void onSpawn(SchedCore &core, ThreadId tid) { core.enqueueBack(tid); }

    void
    wake(SchedCore &core, ThreadId tid, bool resident)
    {
        if (resident) {
            core.noteWakeFront();
            core.enqueueFront(tid);
        } else {
            core.noteWakeBack();
            core.enqueueBack(tid);
        }
    }
};

/**
 * FIFO placement plus a preemption quantum counted in *charged*
 * cycles. After a dispatched thread has accumulated kQuantum cycles
 * of Charge events it is preempted back to the tail of the queue.
 *
 * The quantum is evaluated at replay time only: the trace recorder
 * coalesces adjacent charges, so a live run would observe quantum
 * boundaries at different points than its own replay. The live
 * Scheduler therefore treats RR as placement-only FIFO (documented in
 * scheduler.h), and RR is excluded from live-vs-replay equivalence —
 * the three replay paths remain bit-identical with each other, which
 * is the property the differential tests pin.
 */
class RoundRobinPolicy
{
  public:
    static constexpr SchedPolicy kKind = SchedPolicy::RoundRobin;
    static constexpr bool kUsesResidency = false;
    static constexpr bool kHasQuantum = true;

    /** Fixed so the policy name alone determines the schedule (the
     *  result-cache key contains no quantum knob). ~680 activations
     *  of the default 6-cycle call cost: long enough that pipeline
     *  stages still batch work, short enough to force switch storms
     *  in compute-heavy segments. */
    static constexpr Cycles kQuantum = 4096;

    void noteSpawn(ThreadId, std::uint8_t) {}
    void onSpawn(SchedCore &core, ThreadId tid) { core.enqueueBack(tid); }

    void
    wake(SchedCore &core, ThreadId tid, bool /*resident*/)
    {
        core.noteWakeBack();
        core.enqueueBack(tid);
    }

    void resetQuantum() { used_ = 0; }

    /** Account one Charge event; true when the quantum expired. */
    bool
    chargeExpires(Cycles cycles)
    {
        used_ += cycles;
        return used_ >= kQuantum;
    }

    void
    onQuantumExpiry(SchedCore &core, ThreadId tid)
    {
        core.noteQuantumYield();
        core.enqueueBack(tid);
    }

  private:
    Cycles used_ = 0;
};

/**
 * Static per-thread priority levels. The trace records one priority
 * byte per thread (TraceThreadInfo::priority, clamped to
 * kNumLevels-1); spawns and wakes both enqueue at that level, and
 * dispatch always serves the highest non-empty level. All-zero
 * priorities reduce PRI to FIFO exactly — the differential anchor the
 * tests use.
 */
class PriorityPolicy
{
  public:
    static constexpr SchedPolicy kKind = SchedPolicy::Priority;
    static constexpr bool kUsesResidency = false;
    static constexpr bool kHasQuantum = false;

    void
    noteSpawn(ThreadId tid, std::uint8_t priority)
    {
        const auto idx = static_cast<std::size_t>(tid);
        if (idx >= level_.size())
            level_.resize(idx + 1, 0);
        level_[idx] = priority < SchedCore::kNumLevels
                          ? priority
                          : SchedCore::kNumLevels - 1;
    }

    void
    onSpawn(SchedCore &core, ThreadId tid)
    {
        core.enqueueBack(tid, level(tid));
    }

    void
    wake(SchedCore &core, ThreadId tid, bool /*resident*/)
    {
        core.noteWakeBack();
        core.enqueueBack(tid, level(tid));
    }

  private:
    int
    level(ThreadId tid) const
    {
        const auto idx = static_cast<std::size_t>(tid);
        return idx < level_.size() ? level_[idx] : 0;
    }

    std::vector<std::uint8_t> level_;
};

/**
 * Working set with a residency-aged front queue: a thread may jump
 * the queue at most kMaxFrontJumps consecutive times; the next wake
 * goes to the back and resets its age. Bounds the §4.6 starvation
 * mode where two resident threads ping-pong at the queue front while
 * everything behind them waits.
 */
class WorkingSetAgedPolicy
{
  public:
    static constexpr SchedPolicy kKind = SchedPolicy::WorkingSetAged;
    static constexpr bool kUsesResidency = true;
    static constexpr bool kHasQuantum = false;

    static constexpr std::uint8_t kMaxFrontJumps = 3;

    void
    noteSpawn(ThreadId tid, std::uint8_t)
    {
        const auto idx = static_cast<std::size_t>(tid);
        if (idx >= jumps_.size())
            jumps_.resize(idx + 1, 0);
    }

    void onSpawn(SchedCore &core, ThreadId tid) { core.enqueueBack(tid); }

    void
    wake(SchedCore &core, ThreadId tid, bool resident)
    {
        const auto idx = static_cast<std::size_t>(tid);
        if (idx >= jumps_.size())
            jumps_.resize(idx + 1, 0);
        if (resident && jumps_[idx] < kMaxFrontJumps) {
            ++jumps_[idx];
            core.noteWakeFront();
            core.enqueueFront(tid);
        } else {
            jumps_[idx] = 0;
            core.noteWakeBack();
            core.enqueueBack(tid);
        }
    }

  private:
    std::vector<std::uint8_t> jumps_;
};

/**
 * Runtime-selected policy: a variant over the concrete policy types.
 * The live Scheduler and the legacy replay oracle call straight
 * through it (placement is off their hot paths); the fast and batched
 * replay drivers call visit() once per run to enter a loop templated
 * on the concrete type.
 */
class SchedPolicyBox
{
  public:
    explicit SchedPolicyBox(SchedPolicy kind);

    SchedPolicy kind() const { return kind_; }
    bool usesResidency() const { return policyUsesResidency(kind_); }

    void
    noteSpawn(ThreadId tid, std::uint8_t priority)
    {
        std::visit([&](auto &p) { p.noteSpawn(tid, priority); }, impl_);
    }

    void
    onSpawn(SchedCore &core, ThreadId tid)
    {
        std::visit([&](auto &p) { p.onSpawn(core, tid); }, impl_);
    }

    void
    wake(SchedCore &core, ThreadId tid, bool resident)
    {
        std::visit([&](auto &p) { p.wake(core, tid, resident); }, impl_);
    }

    void
    resetQuantum()
    {
        std::visit(
            [](auto &p) {
                if constexpr (std::decay_t<decltype(p)>::kHasQuantum)
                    p.resetQuantum();
            },
            impl_);
    }

    /** Account a Charge; false always for quantum-less policies. */
    bool
    chargeExpires(Cycles cycles)
    {
        return std::visit(
            [&](auto &p) {
                if constexpr (std::decay_t<decltype(p)>::kHasQuantum)
                    return p.chargeExpires(cycles);
                else
                    return false;
            },
            impl_);
    }

    void
    onQuantumExpiry(SchedCore &core, ThreadId tid)
    {
        std::visit(
            [&](auto &p) {
                if constexpr (std::decay_t<decltype(p)>::kHasQuantum)
                    p.onQuantumExpiry(core, tid);
            },
            impl_);
    }

    /** Dispatch into code templated on the concrete policy type. */
    template <typename F>
    decltype(auto)
    visit(F &&f)
    {
        return std::visit(std::forward<F>(f), impl_);
    }

  private:
    std::variant<FifoPolicy, WorkingSetPolicy, RoundRobinPolicy,
                 PriorityPolicy, WorkingSetAgedPolicy>
        impl_;
    SchedPolicy kind_;
};

} // namespace crw

#endif // CRW_RT_SCHED_CORE_H_
