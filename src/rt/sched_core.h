/**
 * @file
 * SchedCore: the pure scheduling-policy core shared by the live
 * coroutine Scheduler (src/rt/scheduler.h) and the trace ReplayDriver
 * (src/trace/replay_driver.h).
 *
 * The paper's ready-queue policies (§4.5 FIFO, §4.6 working set) are
 * decisions about *queue placement only*; they do not need coroutines,
 * thread objects or streams. Extracting them here lets a captured
 * event trace be re-scheduled against any (scheme, window-count,
 * policy) combination: the working-set refinement consults *engine
 * residency at the moment of the wake*, which the caller passes in, so
 * replay reproduces exactly the decisions a live run would make.
 */

#ifndef CRW_RT_SCHED_CORE_H_
#define CRW_RT_SCHED_CORE_H_

#include <cstdint>
#include <deque>

#include "common/stats.h"
#include "common/types.h"

namespace crw {

/** Ready-queue policy, paper §4.6. */
enum class SchedPolicy {
    Fifo,       ///< plain first-in first-out
    WorkingSet, ///< awoken-and-resident threads jump the queue
};

const char *policyName(SchedPolicy policy);

/**
 * The ready queue plus the dispatch-order bookkeeping the paper's
 * evaluation reports. Thread lifecycle state (Ready/Blocked/...) stays
 * with the driver (live Scheduler or ReplayDriver); SchedCore only
 * sees ids of ready threads.
 */
class SchedCore
{
  public:
    explicit SchedCore(SchedPolicy policy)
        : policy_(policy)
    {}

    SchedPolicy policy() const { return policy_; }

    /** Enqueue a newly spawned thread (always at the back). */
    void
    enqueueBack(ThreadId tid)
    {
        ready_.push_back(tid);
        notePeak();
    }

    /**
     * Enqueue an awoken thread. §4.6: under the working-set policy a
     * thread whose windows are still resident jumps to the *front* of
     * the queue; everything else goes to the back.
     *
     * @param windows_resident Whether the engine still holds at least
     *        one window of @p tid (WindowEngine::isResident, evaluated
     *        by the caller at wake time).
     */
    void
    wake(ThreadId tid, bool windows_resident)
    {
        if (policy_ == SchedPolicy::WorkingSet && windows_resident)
            ready_.push_front(tid);
        else
            ready_.push_back(tid);
        notePeak();
    }

    bool idle() const { return ready_.empty(); }

    /**
     * Pop the next thread to run. Samples "parallel slackness"
     * (paper §5: threads available for execution right now, excluding
     * the one being dispatched) and counts the dispatch.
     */
    ThreadId
    dispatchNext()
    {
        const ThreadId tid = ready_.front();
        ready_.pop_front();
        slackness_.sample(static_cast<double>(ready_.size()));
        ++dispatches_;
        return tid;
    }

    /** Ready-queue length sampled at every dispatch (paper §5). */
    const Distribution &slackness() const { return slackness_; }

    /** Dispatch count (= context switches + same-thread skips). */
    std::uint64_t dispatches() const { return dispatches_; }

    /** High-water mark of the ready queue over the whole run. */
    std::size_t peakReady() const { return peakReady_; }

  private:
    void
    notePeak()
    {
        if (ready_.size() > peakReady_)
            peakReady_ = ready_.size();
    }

    SchedPolicy policy_;
    std::deque<ThreadId> ready_;
    Distribution slackness_;
    std::uint64_t dispatches_ = 0;
    std::size_t peakReady_ = 0;
};

} // namespace crw

#endif // CRW_RT_SCHED_CORE_H_
