/**
 * @file
 * HostPool: the process-lifetime worker pool behind every parallel
 * sweep (bench/harness.h ParallelSweep) and capture fan-out.
 *
 * The previous design spawned fresh std::threads — and a heap-
 * allocated std::function per worker — for every sweep; a bench run
 * that executes many small sweeps paid thread creation and teardown
 * each time. HostPool keeps one set of parked workers for the life of
 * the process:
 *
 *  - run() publishes one job (a plain function pointer + context, no
 *    allocation) and participates as worker 0 itself;
 *  - workers claim indices in chunks off one atomic counter — the
 *    classic work-stealing-by-counter schedule: a fast worker simply
 *    claims more chunks, and the chunking amortizes the atomic to
 *    O(count / chunk) operations;
 *  - the first exception thrown by any task is captured and rethrown
 *    on the caller after the job drains (remaining claimed chunks
 *    finish; unclaimed chunks are abandoned), so a failing replay
 *    point surfaces as an ordinary exception instead of
 *    std::terminate;
 *  - helper threads are spawned lazily, up to the largest
 *    max_workers ever requested (bounded by the --jobs clamp), and
 *    parked on a condition variable between jobs.
 *
 * Jobs must be issued one at a time (the bench executor and capture
 * paths are serial at this level); run() is not reentrant and not
 * thread-safe, which keeps the job hand-off a single seqlock-free
 * generation bump.
 */

#ifndef CRW_RT_HOST_POOL_H_
#define CRW_RT_HOST_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <exception>
#include <mutex>
#include <thread>
#include <vector>

namespace crw {

class HostPool
{
  public:
    /** The one pool of the process (lazily constructed, never torn
     *  down until exit; workers park between jobs). */
    static HostPool &instance();

    /**
     * One task: called once per index in [0, count), from worker
     * @p worker (0 = the run() caller). @p ctx is the pointer given
     * to run() — the caller's stack frame outlives the job, so plain
     * pointer capture replaces per-task std::function allocation.
     */
    using TaskFn = void (*)(void *ctx, std::size_t index, int worker);

    /**
     * Execute @p fn for every index in [0, count) using at most
     * @p max_workers workers (including the caller). Returns when
     * every claimed index has run; rethrows the first task exception
     * after the job drains. max_workers <= 1 runs inline.
     */
    void run(std::size_t count, int max_workers, TaskFn fn, void *ctx);

    /** What an EventHook is told about. */
    enum class Event
    {
        JobStart, ///< run() published a job (a = count, b = workers)
        JobEnd,   ///< the job drained (a = count, b = workers)
    };

    /**
     * One process-wide hook observing run() start/end. rt sits below
     * the observability layer, so the dependency is inverted: the
     * bench harness installs a hook that forwards into the obs event
     * ring. Called from the run() caller only — same thread-safety
     * as run() itself. Null uninstalls.
     */
    using EventHook = void (*)(Event event, std::uint64_t a,
                               std::uint64_t b);
    static void setEventHook(EventHook hook);

    /** Helper threads currently parked/spawned (for tests). */
    int spawnedHelpers() const;

    HostPool(const HostPool &) = delete;
    HostPool &operator=(const HostPool &) = delete;

  private:
    HostPool() = default;
    ~HostPool();

    void ensureHelpers(int helpers);
    void helperMain(int helper_index);
    void claimLoop(int worker);
    void recordFailure() noexcept;

    mutable std::mutex mu_;
    std::condition_variable jobCv_;  ///< helpers wait for a job
    std::condition_variable doneCv_; ///< caller waits for helpers
    std::vector<std::thread> helpers_;
    bool stop_ = false;

    // Current job, published under mu_ by a generation bump. Helpers
    // with index >= jobHelpers_ skip the generation without touching
    // the pending count.
    std::uint64_t jobSeq_ = 0;
    int jobHelpers_ = 0;
    int pending_ = 0;
    TaskFn fn_ = nullptr;
    void *ctx_ = nullptr;
    std::size_t count_ = 0;
    std::size_t chunk_ = 1;
    std::atomic<std::size_t> next_{0};

    std::atomic<bool> failed_{false};
    std::exception_ptr firstError_;
    std::mutex errMu_;
};

} // namespace crw

#endif // CRW_RT_HOST_POOL_H_
