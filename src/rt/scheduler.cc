#include "rt/scheduler.h"

#include <sstream>

#include "common/logging.h"

namespace crw {

Scheduler::Scheduler(WindowEngine &engine, SchedPolicy policy,
                     std::size_t stack_size)
    : engine_(engine),
      core_(policy),
      policy_(policy),
      stackSize_(stack_size)
{}

Scheduler::~Scheduler() = default;

Scheduler::Thread &
Scheduler::thread(ThreadId tid)
{
    crw_assert(tid >= 0 && tid < static_cast<ThreadId>(threads_.size()));
    return threads_[static_cast<std::size_t>(tid)];
}

const Scheduler::Thread &
Scheduler::thread(ThreadId tid) const
{
    crw_assert(tid >= 0 && tid < static_cast<ThreadId>(threads_.size()));
    return threads_[static_cast<std::size_t>(tid)];
}

ThreadId
Scheduler::spawn(std::string name, std::function<void()> body,
                 std::uint8_t priority)
{
    const ThreadId tid = static_cast<ThreadId>(threads_.size());
    engine_.addThread(tid);
    if (sink_)
        sink_->onThreadSpawn(tid, name, priority);
    Thread t;
    t.id = tid;
    t.name = std::move(name);
    t.state = ThreadState::Ready;
    t.coro = std::make_unique<Coroutine>(std::move(body), stackSize_);
    threads_.push_back(std::move(t));
    policy_.noteSpawn(tid, priority);
    policy_.onSpawn(core_, tid);
    return tid;
}

void
Scheduler::dispatch(ThreadId tid)
{
    Thread &t = thread(tid);
    crw_assert(t.state == ThreadState::Ready);
    t.state = ThreadState::Running;
    running_ = tid;
    if (engine_.current() != tid)
        engine_.contextSwitch(tid);
    t.coro->resume();
    running_ = kNoThread;
    if (t.coro->finished()) {
        t.state = ThreadState::Finished;
        if (sink_)
            sink_->recordExit(tid);
        engine_.threadExit();
    }
    // Otherwise the thread blocked; blockCurrent() already set the
    // state and queued the id on a waitlist.
}

void
Scheduler::run()
{
    crw_assert(!inRun_);
    inRun_ = true;
    while (!core_.idle())
        dispatch(core_.dispatchNext());
    inRun_ = false;

    std::ostringstream stuck;
    int blocked = 0;
    for (const Thread &t : threads_) {
        if (t.state == ThreadState::Blocked) {
            ++blocked;
            stuck << ' ' << t.name << '(' << t.id << ')';
        }
    }
    if (blocked > 0)
        crw_fatal << "deadlock: " << blocked
                  << " thread(s) blocked forever:" << stuck.str();
}

void
Scheduler::blockCurrent(std::vector<ThreadId> &waitlist)
{
    crw_assert(running_ != kNoThread);
    Thread &t = thread(running_);
    crw_assert(t.state == ThreadState::Running);
    waitlist.push_back(t.id);
    t.state = ThreadState::Blocked;
    t.coro->yieldToMain();
    // Back: dispatch() marked us Running again.
    crw_assert(t.state == ThreadState::Running);
}

void
Scheduler::wake(ThreadId tid)
{
    Thread &t = thread(tid);
    if (t.state != ThreadState::Blocked)
        return;
    t.state = ThreadState::Ready;
    // Queue placement is the policy object's job; residency is
    // evaluated here, at wake time, exactly as the paper's monitor
    // would.
    policy_.wake(core_, tid, engine_.isResident(tid));
}

ThreadState
Scheduler::state(ThreadId tid) const
{
    return thread(tid).state;
}

const std::string &
Scheduler::nameOf(ThreadId tid) const
{
    return thread(tid).name;
}

} // namespace crw
