/**
 * @file
 * TraceSink: the capture hook interface of the runtime layer.
 *
 * A sink installed on a Runtime (Runtime::setTraceSink, *before* the
 * application constructs its streams and threads) receives every
 * engine-relevant action a thread performs — procedure entry/exit
 * (save/restore), compute charges, and the stream operations whose
 * blocking semantics drive all context switches. The concrete
 * recorder (src/trace/event_trace.h) turns these callbacks into a
 * replayable EventTrace.
 *
 * Deliberately *not* in the interface: block, wake and dispatch
 * events. Those are schedule-dependent — they differ between FIFO and
 * working-set runs and between window configurations — so recording
 * them would pin the trace to the capture-time configuration. The
 * replay driver re-derives them from the stream operations instead
 * (see DESIGN.md §8).
 */

#ifndef CRW_RT_TRACE_SINK_H_
#define CRW_RT_TRACE_SINK_H_

#include <cstddef>
#include <cstdint>
#include <string>

#include "common/types.h"

namespace crw {

class TraceSink
{
  public:
    virtual ~TraceSink() = default;

    /**
     * A thread was spawned; tids arrive in spawn order, 0-based.
     * @p priority is the static scheduling priority (0 = default) —
     * a thread *attribute* like the name, not a schedule event, so
     * recording it keeps the trace configuration-independent.
     */
    virtual void onThreadSpawn(ThreadId tid, const std::string &name,
                               std::uint8_t priority) = 0;

    /**
     * A stream was constructed. Returns the stream id the runtime
     * must pass back in recordPut/recordGet/recordClose.
     */
    virtual int onStreamCreate(const std::string &name,
                               std::size_t capacity, int num_writers) = 0;

    virtual void recordSave(ThreadId tid) = 0;
    virtual void recordRestore(ThreadId tid) = 0;
    virtual void recordCharge(ThreadId tid, Cycles cycles) = 0;
    /** One rawPut call (one byte enqueued, blocking as needed). */
    virtual void recordPut(ThreadId tid, int stream_id) = 0;
    /** One rawGet call (one byte dequeued, or EOF). */
    virtual void recordGet(ThreadId tid, int stream_id) = 0;
    virtual void recordClose(ThreadId tid, int stream_id) = 0;
    virtual void recordExit(ThreadId tid) = 0;
};

} // namespace crw

#endif // CRW_RT_TRACE_SINK_H_
