#include "rt/runtime.h"

#include "common/logging.h"

namespace crw {

Runtime::Runtime(const RuntimeConfig &config)
    : engine_(config.engine),
      sched_(engine_, config.policy, config.stackSize),
      cyclesPerCall_(config.cyclesPerCall)
{}

ThreadId
Runtime::requireCaptureThread() const
{
    const ThreadId tid = sched_.currentId();
    if (tid == kNoThread)
        crw_fatal << "trace capture: charge() from the main context "
                     "is not replayable; charge from a thread";
    return tid;
}

} // namespace crw
