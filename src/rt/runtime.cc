#include "rt/runtime.h"

namespace crw {

Runtime::Runtime(const RuntimeConfig &config)
    : engine_(config.engine),
      sched_(engine_, config.policy, config.stackSize),
      cyclesPerCall_(config.cyclesPerCall)
{}

} // namespace crw
