#include "trace/flat_trace.h"

#include "common/logging.h"

namespace crw {

FlatTrace
FlatTrace::build(const EventTrace &trace)
{
    FlatTrace flat;
    // eventCount() walks the same decode; reserving exactly avoids a
    // second growth pass over multi-megabyte arenas.
    const std::uint64_t total = trace.eventCount();
    crw_assert(total <= UINT32_MAX);
    flat.opsStorage.reserve(total);
    flat.operandStorage.reserve(total);
    flat.threads.reserve(trace.threads.size());

    for (const TraceThreadInfo &t : trace.threads) {
        Span span;
        span.begin = static_cast<std::uint32_t>(flat.opsStorage.size());
        TraceCursor cur(t.code);
        std::uint64_t operand;
        while (!cur.atEnd()) {
            const TraceOp op = cur.peek(operand);
            cur.advance();
            flat.opsStorage.push_back(static_cast<std::uint8_t>(op));
            flat.operandStorage.push_back(operand);
        }
        span.end = static_cast<std::uint32_t>(flat.opsStorage.size());
        flat.threads.push_back(span);
    }
    flat.ops = flat.opsStorage.data();
    flat.operands = flat.operandStorage.data();
    flat.events =
        static_cast<std::uint32_t>(flat.opsStorage.size());
    return flat;
}

} // namespace crw
