#include "trace/synth.h"

#include <algorithm>
#include <string>

#include "common/logging.h"
#include "common/rng.h"
#include "rt/sched_core.h"

namespace crw {
namespace {

std::uint8_t
priorityOf(const SynthSpec &spec, int tid)
{
    if (!spec.prioritized)
        return 0;
    return static_cast<std::uint8_t>((tid * 3 + 1) %
                                     SchedCore::kNumLevels);
}

Cycles
drawCharge(Rng &rng, const SynthSpec &spec)
{
    // meanCharge ± 50%, floor 1: a charge of 0 would be dropped by
    // the recorder's coalescing and desync the rng-to-event mapping.
    const std::int64_t mean =
        std::max<std::int64_t>(2, static_cast<std::int64_t>(
                                      spec.meanCharge));
    const std::int64_t half = mean / 2;
    return static_cast<Cycles>(
        rng.nextInRange(mean - half, mean + half));
}

/**
 * One work item: a balanced call walk to a depth drawn from the
 * spec's distribution — d saves with a charge inside each activation,
 * then d restores. This is the synthetic stand-in for the per-word
 * call trees the spell threads produce.
 */
void
emitWalk(TraceRecorder &rec, Rng &rng, const SynthSpec &spec,
         ThreadId tid)
{
    const int lo = std::max(1, spec.meanDepth - spec.depthJitter);
    const int hi = std::max(lo, spec.meanDepth + spec.depthJitter);
    const int depth = static_cast<int>(rng.nextInRange(lo, hi));
    for (int i = 0; i < depth; ++i) {
        rec.recordSave(tid);
        rec.recordCharge(tid, drawCharge(rng, spec));
    }
    for (int i = 0; i < depth; ++i)
        rec.recordRestore(tid);
}

/**
 * One thread's lock-contention segment: lockRounds × (acquire the
 * token, run a short critical-section activation, release, back off).
 * The token stream has capacity 1 and is never closed, so an acquire
 * on an empty stream parks the thread — with many contenders this is
 * a switch storm by construction.
 */
void
emitLockSegment(TraceRecorder &rec, Rng &rng, const SynthSpec &spec,
                ThreadId tid, int lock_stream)
{
    for (int r = 0; r < spec.lockRounds; ++r) {
        rec.recordGet(tid, lock_stream);
        rec.recordSave(tid);
        rec.recordCharge(tid, drawCharge(rng, spec));
        rec.recordRestore(tid);
        rec.recordPut(tid, lock_stream);
        rec.recordCharge(tid, drawCharge(rng, spec)); // backoff
    }
}

/** The shared lock stream, or -1 when the spec has no lock segments.
 *  Writers = every thread (each put returns the token); never closed,
 *  so a get on it always parks instead of seeing EOF. */
int
createLockStream(TraceRecorder &rec, const SynthSpec &spec,
                 int num_threads)
{
    if (spec.lockRounds <= 0)
        return -1;
    return rec.onStreamCreate("lock", 1, num_threads);
}

void
emitPipeline(TraceRecorder &rec, Rng &rng, const SynthSpec &spec)
{
    const int stages = std::max(2, spec.threads);
    const int cap = std::max(1, spec.streamCapacity);

    std::vector<int> link(static_cast<std::size_t>(stages - 1));
    for (int i = 0; i + 1 < stages; ++i)
        link[static_cast<std::size_t>(i)] = rec.onStreamCreate(
            "P" + std::to_string(i), static_cast<std::size_t>(cap), 1);
    const int lock = createLockStream(rec, spec, stages);

    for (int i = 0; i < stages; ++i)
        rec.onThreadSpawn(i, "T" + std::to_string(i) + ":stage",
                          priorityOf(spec, i));

    for (int i = 0; i < stages; ++i) {
        const ThreadId tid = i;
        if (i == 0 && lock >= 0)
            rec.recordPut(tid, lock); // seed the token
        for (int item = 0; item < spec.items; ++item) {
            if (i > 0)
                rec.recordGet(tid, link[static_cast<std::size_t>(i - 1)]);
            emitWalk(rec, rng, spec, tid);
            if (i + 1 < stages)
                rec.recordPut(tid, link[static_cast<std::size_t>(i)]);
        }
        if (i + 1 < stages)
            rec.recordClose(tid, link[static_cast<std::size_t>(i)]);
        if (lock >= 0)
            emitLockSegment(rec, rng, spec, tid, lock);
        rec.recordExit(tid);
    }
}

void
emitFanInOut(TraceRecorder &rec, Rng &rng, const SynthSpec &spec)
{
    const int workers = std::max(1, spec.threads);
    const int total = workers + 2; // source + workers + sink
    const int cap = std::max(1, spec.streamCapacity);

    std::vector<int> scatter(static_cast<std::size_t>(workers));
    for (int w = 0; w < workers; ++w)
        scatter[static_cast<std::size_t>(w)] = rec.onStreamCreate(
            "F" + std::to_string(w), static_cast<std::size_t>(cap), 1);
    const int gather = rec.onStreamCreate(
        "J", static_cast<std::size_t>(cap), workers);
    const int lock = createLockStream(rec, spec, total);

    rec.onThreadSpawn(0, "T0:source", priorityOf(spec, 0));
    for (int w = 0; w < workers; ++w)
        rec.onThreadSpawn(1 + w, "T" + std::to_string(1 + w) + ":worker",
                          priorityOf(spec, 1 + w));
    rec.onThreadSpawn(total - 1,
                      "T" + std::to_string(total - 1) + ":sink",
                      priorityOf(spec, total - 1));

    // Source: round-robin scatter, one shallow activation per item.
    {
        const ThreadId tid = 0;
        if (lock >= 0)
            rec.recordPut(tid, lock); // seed the token
        for (int item = 0; item < spec.items; ++item) {
            rec.recordSave(tid);
            rec.recordCharge(tid, drawCharge(rng, spec));
            rec.recordRestore(tid);
            rec.recordPut(tid,
                          scatter[static_cast<std::size_t>(item %
                                                           workers)]);
        }
        for (int w = 0; w < workers; ++w)
            rec.recordClose(tid, scatter[static_cast<std::size_t>(w)]);
        if (lock >= 0)
            emitLockSegment(rec, rng, spec, tid, lock);
        rec.recordExit(tid);
    }

    // Workers: the deep per-item call walks, gathered into one stream.
    for (int w = 0; w < workers; ++w) {
        const ThreadId tid = 1 + w;
        const int mine = spec.items / workers +
                         (w < spec.items % workers ? 1 : 0);
        for (int j = 0; j < mine; ++j) {
            rec.recordGet(tid, scatter[static_cast<std::size_t>(w)]);
            emitWalk(rec, rng, spec, tid);
            rec.recordPut(tid, gather);
        }
        rec.recordClose(tid, gather);
        if (lock >= 0)
            emitLockSegment(rec, rng, spec, tid, lock);
        rec.recordExit(tid);
    }

    // Sink: drain, one shallow activation per item.
    {
        const ThreadId tid = total - 1;
        for (int item = 0; item < spec.items; ++item) {
            rec.recordGet(tid, gather);
            rec.recordSave(tid);
            rec.recordCharge(tid, drawCharge(rng, spec));
            rec.recordRestore(tid);
        }
        if (lock >= 0)
            emitLockSegment(rec, rng, spec, tid, lock);
        rec.recordExit(tid);
    }
}

void
emitRing(TraceRecorder &rec, Rng &rng, const SynthSpec &spec)
{
    const int size = std::max(2, spec.threads);
    const int cap = std::max(1, spec.streamCapacity);

    std::vector<int> ring(static_cast<std::size_t>(size));
    for (int i = 0; i < size; ++i)
        ring[static_cast<std::size_t>(i)] = rec.onStreamCreate(
            "R" + std::to_string(i), static_cast<std::size_t>(cap), 1);
    const int lock = createLockStream(rec, spec, size);

    for (int i = 0; i < size; ++i)
        rec.onThreadSpawn(i, "T" + std::to_string(i) + ":ring",
                          priorityOf(spec, i));

    // Thread 0 primes at most `cap` tokens and strictly get-then-puts
    // afterwards, bounding the in-flight token count by every buffer's
    // capacity — the ring cannot deadlock (see synth.h).
    {
        const ThreadId tid = 0;
        const int upstream = ring[static_cast<std::size_t>(size - 1)];
        const int primed = std::min(cap, spec.items);
        if (lock >= 0)
            rec.recordPut(tid, lock); // seed the token
        for (int j = 0; j < primed; ++j) {
            emitWalk(rec, rng, spec, tid);
            rec.recordPut(tid, ring[0]);
        }
        for (int j = 0; j < spec.items - primed; ++j) {
            rec.recordGet(tid, upstream);
            emitWalk(rec, rng, spec, tid);
            rec.recordPut(tid, ring[0]);
        }
        for (int j = 0; j < primed; ++j) {
            rec.recordGet(tid, upstream);
            emitWalk(rec, rng, spec, tid);
        }
        rec.recordClose(tid, ring[0]);
        if (lock >= 0)
            emitLockSegment(rec, rng, spec, tid, lock);
        rec.recordExit(tid);
    }

    for (int i = 1; i < size; ++i) {
        const ThreadId tid = i;
        for (int j = 0; j < spec.items; ++j) {
            rec.recordGet(tid, ring[static_cast<std::size_t>(i - 1)]);
            emitWalk(rec, rng, spec, tid);
            rec.recordPut(tid, ring[static_cast<std::size_t>(i)]);
        }
        rec.recordClose(tid, ring[static_cast<std::size_t>(i)]);
        if (lock >= 0)
            emitLockSegment(rec, rng, spec, tid, lock);
        rec.recordExit(tid);
    }
}

} // namespace

const char *
synthTopologyName(SynthSpec::Topology topology)
{
    switch (topology) {
    case SynthSpec::Topology::Pipeline:
        return "pipeline";
    case SynthSpec::Topology::FanInOut:
        return "fanio";
    case SynthSpec::Topology::Ring:
        return "ring";
    }
    return "?";
}

std::string
synthTraceKey(const SynthSpec &spec)
{
    return std::string("synth-") + synthTopologyName(spec.topology) +
           "-t" + std::to_string(spec.threads) + "-i" +
           std::to_string(spec.items) + "-c" +
           std::to_string(spec.streamCapacity) + "-d" +
           std::to_string(spec.meanDepth) + "j" +
           std::to_string(spec.depthJitter) + "-ch" +
           std::to_string(spec.meanCharge) + "-l" +
           std::to_string(spec.lockRounds) + "-p" +
           (spec.prioritized ? "1" : "0") + "-g" +
           std::to_string(kSynthGenVersion);
}

EventTrace
generateSynthTrace(const SynthSpec &spec)
{
    crw_assert(spec.items > 0);
    TraceRecorder rec(synthTraceKey(spec), spec.seed, 0);
    // One generator for the whole trace, consumed in fixed
    // thread-by-thread emission order: the byte stream is a pure
    // function of the spec.
    Rng rng(spec.seed);
    switch (spec.topology) {
    case SynthSpec::Topology::Pipeline:
        emitPipeline(rec, rng, spec);
        break;
    case SynthSpec::Topology::FanInOut:
        emitFanInOut(rec, rng, spec);
        break;
    case SynthSpec::Topology::Ring:
        emitRing(rec, rng, spec);
        break;
    }
    return rec.take(0, 0);
}

const std::vector<SynthSpec> &
synthBehaviorMenu()
{
    static const std::vector<SynthSpec> kMenu = [] {
        std::vector<SynthSpec> menu;
        SynthSpec pipe;
        pipe.topology = SynthSpec::Topology::Pipeline;
        pipe.threads = 6;
        pipe.items = 400;
        pipe.streamCapacity = 1;
        pipe.meanDepth = 5;
        pipe.depthJitter = 3;
        pipe.meanCharge = 40;
        pipe.prioritized = true;
        pipe.seed = 11;
        menu.push_back(pipe);

        SynthSpec fan;
        fan.topology = SynthSpec::Topology::FanInOut;
        fan.threads = 4;
        fan.items = 480;
        fan.streamCapacity = 2;
        fan.meanDepth = 6;
        fan.depthJitter = 2;
        fan.meanCharge = 60;
        fan.prioritized = true;
        fan.seed = 22;
        menu.push_back(fan);

        SynthSpec ring;
        ring.topology = SynthSpec::Topology::Ring;
        ring.threads = 5;
        ring.items = 300;
        ring.streamCapacity = 2;
        ring.meanDepth = 4;
        ring.depthJitter = 2;
        ring.meanCharge = 30;
        ring.prioritized = true;
        ring.seed = 33;
        menu.push_back(ring);

        SynthSpec lock;
        lock.topology = SynthSpec::Topology::FanInOut;
        lock.threads = 6;
        lock.items = 240;
        lock.streamCapacity = 1;
        lock.meanDepth = 3;
        lock.depthJitter = 2;
        lock.meanCharge = 25;
        lock.lockRounds = 60;
        lock.prioritized = true;
        lock.seed = 44;
        menu.push_back(lock);

        // Compute-bound: deep buffers and heavy per-item work, so
        // threads run long between blocking events and RoundRobin's
        // quantum actually expires (everywhere else the capacity-1
        // streams preempt threads long before 4096 cycles).
        SynthSpec compute;
        compute.topology = SynthSpec::Topology::Pipeline;
        compute.threads = 4;
        compute.items = 160;
        compute.streamCapacity = 64;
        compute.meanDepth = 8;
        compute.depthJitter = 4;
        compute.meanCharge = 200;
        compute.prioritized = true;
        compute.seed = 55;
        menu.push_back(compute);
        return menu;
    }();
    return kMenu;
}

} // namespace crw
