/**
 * @file
 * Batched lockstep replay: one forward pass over a FlatTrace drives
 * up to K engine states (DESIGN.md §14).
 *
 * Replay control flow — dispatch order, stream occupancy/blocking,
 * thread script positions — depends on the *event sequence* only,
 * never on engine state, with one exception: the working-set policy
 * family (WS, WSA) consults engine residency at each wake. Every
 * other policy input is lane-invariant by the policy determinism
 * contract (rt/sched_core.h): FIFO ignores everything, Priority reads
 * static per-thread priorities from the trace, and RoundRobin's
 * quantum accumulates shared trace charge operands. For those
 * policies the schedules of every (windows, PRW, alloc) variant of
 * one (behavior, scheme, policy, cost-model) group are therefore
 * *provably identical*, so one shared SchedCore + policy object +
 * stream/thread state can drive K engines in lockstep: a cold
 * fig11+12+13 sweep walks each trace once per scheme instead of once
 * per point. Under the working-set family the batch runs
 * optimistically — the leader lane answers each wake's residency
 * query and records a checkpoint, and every follower lane re-verifies
 * the checkpoints during its deferred replay — and reports divergence
 * on the first disagreement; the executor then replays those points
 * individually (the diverged engines are discarded, never flushed, so
 * no partial state leaks).
 *
 * Each lane still produces RunMetrics bit-identical to a per-point
 * replay: every tracker field RunMetrics reads (activity, total
 * activity, concurrency) is a pure function of the shared event
 * sequence, so ONE BehaviorTracker serves the whole batch; per-lane
 * switch-cost Distributions sample in per-lane event order; and the
 * shared core's slackness/dispatch statistics are schedule-derived —
 * identical to what K per-point cores would each record
 * (tests/win/test_batch_replay.cc pins all of this differentially).
 *
 * Within a batch only lane 0 runs the walk inline; it records the
 * engine-op stream, and BatchedEngineView::finish() replays the
 * followers from that record — per lane on the scalar tier, or in
 * one lane-SoA pass with SIMD run kernels on the vector tiers
 * ($CRW_SIMD, win/simd.h, DESIGN.md §16). The tier is a host-side
 * choice only: every tier produces bit-identical lane results.
 */

#ifndef CRW_TRACE_REPLAY_BATCH_H_
#define CRW_TRACE_REPLAY_BATCH_H_

#include <memory>
#include <vector>

#include "rt/sched_core.h"
#include "trace/behavior.h"
#include "trace/event_trace.h"
#include "trace/flat_trace.h"
#include "trace/replay_state.h"
#include "trace/run_metrics.h"
#include "win/engine.h"
#include "win/simd.h"

namespace crw {

namespace detail_replay {

/**
 * The lockstep batch loop over shared control state and K lanes.
 * Internal: ReplayDriver (ReplayPath::Batched) runs it at width one
 * over its own state; BatchedReplayDriver runs it at full width.
 *
 * @return false when a working-set-family wake found the lanes
 *         disagreeing on residency — the schedules would fork, the
 *         batch state is abandoned mid-run and must be discarded.
 *
 * @param simd_path When non-null, receives the follower pass the
 *        batch actually dispatched (BatchedEngineView::simdPathTaken):
 *        Scalar when the per-lane oracle ran the followers, else the
 *        SoA tier. Written on both outcomes.
 */
bool runLockstepLoop(const EventTrace &trace, const FlatTrace &flat,
                     SchedCore &core, SchedPolicyBox &policy,
                     std::vector<RStream> &streams,
                     std::vector<RThread> &threads,
                     WindowEngine *const *engines,
                     BehaviorTracker &tracker, std::size_t lanes,
                     SimdTier *simd_path = nullptr);

} // namespace detail_replay

/**
 * Replays one trace once, advancing one engine per config in
 * lockstep. All configs must share the scheme kind (one template
 * instantiation drives the batch) and must not request
 * checkInvariants; window count, PRW reclamation, allocation policy
 * and cost model may differ per lane — none of them feed back into
 * scheduling.
 */
class BatchedReplayDriver
{
  public:
    /**
     * @param trace The captured run (not owned; must outlive this).
     * @param configs One engine configuration per lane (>= 1).
     * @param policy Ready-queue policy to re-schedule with.
     * @param flat Optional predecoded image of @p trace (not owned);
     *        when absent, run() predecodes privately.
     */
    BatchedReplayDriver(const EventTrace &trace,
                        const std::vector<EngineConfig> &configs,
                        SchedPolicy policy,
                        const FlatTrace *flat = nullptr);

    BatchedReplayDriver(const BatchedReplayDriver &) = delete;
    BatchedReplayDriver &operator=(const BatchedReplayDriver &) =
        delete;

    /**
     * Replay the whole trace across all lanes. Fatal on a second call
     * and on a stuck/mismatched trace.
     *
     * @return true on a completed lockstep run; false when a
     *         working-set batch diverged — every lane's state is then
     *         garbage and the caller must re-replay the points
     *         individually on fresh drivers.
     */
    bool run();

    std::size_t lanes() const { return engines_.size(); }

    /** Metrics of lane @p lane. Fatal before a successful run(). */
    RunMetrics metrics(std::size_t lane) const;

    WindowEngine &engine(std::size_t lane)
    {
        return *engines_[lane];
    }
    const WindowEngine &engine(std::size_t lane) const
    {
        return *engines_[lane];
    }
    const SchedCore &core() const { return core_; }

    /**
     * The follower pass run() actually dispatched: Scalar when the
     * per-lane oracle replayed the followers (scalar tier, or the
     * sharing schemes' pin under `auto` dispatch), else the lane-SoA
     * tier. Meaningless before run().
     */
    SimdTier simdPath() const { return simdPath_; }

  private:
    const EventTrace &trace_;
    const FlatTrace *flat_;
    std::unique_ptr<FlatTrace> ownedFlat_;
    std::vector<std::unique_ptr<WindowEngine>> engines_;
    /**
     * One tracker for all lanes: every field RunMetrics reads from it
     * depends only on the shared event sequence (the granularity
     * distribution is the lone per-clock member, and nothing collects
     * it from a replay).
     */
    BehaviorTracker tracker_;
    SchedCore core_;
    SchedPolicyBox policy_;
    std::vector<RStream> streams_;
    std::vector<RThread> threads_;
    SimdTier simdPath_ = SimdTier::Scalar;
    bool ran_ = false;
    bool ok_ = false;
};

} // namespace crw

#endif // CRW_TRACE_REPLAY_BATCH_H_
