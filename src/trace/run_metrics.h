/**
 * @file
 * RunMetrics: everything one spell-checker run produced — live
 * (coroutines, bench/harness.h runSpell) or replayed
 * (trace/replay_driver.h). Collected through one shared function so
 * the two paths are field-for-field comparable; the replay-equivalence
 * test (tests/win/test_replay_equivalence.cc) pins them equal.
 */

#ifndef CRW_TRACE_RUN_METRICS_H_
#define CRW_TRACE_RUN_METRICS_H_

#include <cstdint>
#include <vector>

#include "common/stats.h"
#include "rt/sched_core.h"
#include "trace/behavior.h"
#include "win/engine.h"

namespace crw {

/** Everything one spell-checker run produced. */
struct RunMetrics
{
    SchemeKind scheme{};
    SchedPolicy policy{};
    int windows = 0;

    Cycles totalCycles = 0;
    std::uint64_t switches = 0;
    std::uint64_t saves = 0;
    std::uint64_t restores = 0;
    std::uint64_t overflowTraps = 0;
    std::uint64_t underflowTraps = 0;
    std::uint64_t switchWindowsSaved = 0;
    std::uint64_t switchWindowsRestored = 0;
    double meanSwitchCost = 0.0;

    /** (overflow + underflow traps) / (saves + restores) — Fig. 13. */
    double trapProbability = 0.0;

    // §5 behavior metrics.
    double activityPerQuantum = 0.0;
    double totalWindowActivity = 0.0;
    double concurrency = 0.0;
    double meanSlackness = 0.0;

    std::vector<ThreadCounters> perThread; ///< T1..T7
    std::size_t misspelled = 0;
};

/**
 * Read a finished run's metrics out of the engine, tracker and
 * scheduler-core statistics. @p num_threads per-thread counters are
 * collected for tids 0 .. num_threads-1 (= spawn order).
 */
RunMetrics collectRunMetrics(const WindowEngine &engine,
                             const BehaviorTracker &tracker,
                             const Distribution &slackness,
                             SchedPolicy policy, int num_threads,
                             std::size_t misspelled);

} // namespace crw

#endif // CRW_TRACE_RUN_METRICS_H_
