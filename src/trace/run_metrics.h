/**
 * @file
 * RunMetrics: everything one spell-checker run produced — live
 * (coroutines, spell/capture.h runSpellLive) or replayed
 * (trace/replay_driver.h). Collected through one shared function so
 * the two paths are field-for-field comparable; the replay-equivalence
 * test (tests/win/test_replay_equivalence.cc) pins them equal.
 */

#ifndef CRW_TRACE_RUN_METRICS_H_
#define CRW_TRACE_RUN_METRICS_H_

#include <cstdint>
#include <vector>

#include "common/stats.h"
#include "rt/sched_core.h"
#include "trace/behavior.h"
#include "win/engine.h"

namespace crw {

/** Everything one spell-checker run produced. */
struct RunMetrics
{
    SchemeKind scheme{};
    SchedPolicy policy{};
    int windows = 0;

    Cycles totalCycles = 0;
    std::uint64_t switches = 0;
    std::uint64_t saves = 0;
    std::uint64_t restores = 0;
    std::uint64_t overflowTraps = 0;
    std::uint64_t underflowTraps = 0;
    std::uint64_t switchWindowsSaved = 0;
    std::uint64_t switchWindowsRestored = 0;
    double meanSwitchCost = 0.0;

    /** (overflow + underflow traps) / (saves + restores) — Fig. 13. */
    double trapProbability = 0.0;

    // §5 behavior metrics.
    double activityPerQuantum = 0.0;
    double totalWindowActivity = 0.0;
    double concurrency = 0.0;
    double meanSlackness = 0.0;

    std::vector<ThreadCounters> perThread; ///< T1..T7
    std::size_t misspelled = 0;
};

/**
 * Read a finished run's metrics out of the engine, tracker and
 * scheduler-core statistics. @p num_threads per-thread counters are
 * collected for tids 0 .. num_threads-1 (= spawn order).
 */
RunMetrics collectRunMetrics(const WindowEngine &engine,
                             const BehaviorTracker &tracker,
                             const Distribution &slackness,
                             SchedPolicy policy, int num_threads,
                             std::size_t misspelled);

/**
 * Versioned binary serialization of one RunMetrics, mirroring
 * event_trace's CRWTRACE framing: magic "CRWMETRS", u32 version,
 * payload, trailing u64 FNV-1a checksum of the payload. Doubles are
 * stored as their exact IEEE-754 bit patterns, so a loaded record is
 * bit-identical to the stored one — the property the bench result
 * cache relies on to keep cached sweeps byte-identical to fresh ones.
 *
 * The payload opens with a caller-supplied identity key (the
 * result-cache key: trace checksum + canonical engine config + policy
 * + cost model + this format version). loadMetricsFile() rejects a
 * file whose stored key differs from the expected one, so a hash
 * collision in the cache's file naming can never alias two points.
 *
 * Bump kRunMetricsFormatVersion whenever RunMetrics gains, loses or
 * reinterprets a field: old cache entries are then rejected (version
 * mismatch) and silently recomputed.
 *
 * Version history:
 *   1  original format
 *   2  the SchedPolicy axis grew from {Fifo, WorkingSet} to the full
 *      policy family (rt/sched_core.h) and traces gained per-thread
 *      priorities (kTraceFormatVersion 2). The encoding is unchanged,
 *      but every v1 entry predates the policy layer, so the bump
 *      retires them explicitly rather than leaning on the trace
 *      checksum change alone.
 */
inline constexpr std::uint32_t kRunMetricsFormatVersion = 2;

/**
 * Serialize @p metrics with identity @p key into the versioned record
 * payload — the exact bytes the CRWMETRS file frames and the arena
 * result store (bench/result_cache.cc) stores as its blob. One
 * encoder, two containers: a record migrated from a legacy file into
 * the store stays bit-identical.
 */
std::vector<std::uint8_t> encodeMetricsRecord(const RunMetrics &metrics,
                                              const std::string &key);

/**
 * Decode a payload produced by encodeMetricsRecord. False on
 * malformed bytes or on a stored identity key differing from
 * @p expected_key; @p key_mismatch (may be null) distinguishes the
 * latter — an honest collision, not corruption.
 */
bool decodeMetricsRecord(const std::uint8_t *data, std::size_t n,
                         const std::string &expected_key,
                         RunMetrics &out,
                         bool *key_mismatch = nullptr);

/** Why a loadMetricsFile call did not produce a record. */
enum class MetricsLoadStatus
{
    Ok,
    NotFound,        ///< no file at the path
    Malformed,       ///< bad magic, truncation, checksum, or decode
    VersionMismatch, ///< stale format: recompute, don't count corrupt
    KeyMismatch,     ///< file-name hash collision: silent miss
};

/** Write @p metrics under identity @p key (temp file + rename). */
bool saveMetricsFile(const RunMetrics &metrics, const std::string &key,
                     const std::string &path,
                     std::string *error = nullptr);

/**
 * Read a metrics record back. False (with a reason in @p error and a
 * classification in @p status, both optional) on a bad magic, unknown
 * version, truncation, checksum mismatch, or a stored identity key
 * differing from @p expected_key.
 */
bool loadMetricsFile(const std::string &path,
                     const std::string &expected_key, RunMetrics &out,
                     std::string *error = nullptr,
                     MetricsLoadStatus *status = nullptr);

/**
 * Extract the stored identity key of a CRWMETRS file without decoding
 * the record (frame and checksum are still verified). The cache GC
 * uses this to map legacy files back to their trace checksum.
 */
bool peekMetricsFileKey(const std::string &path, std::string &key_out);

/**
 * Field-for-field equality, doubles compared bit-exactly (the cache
 * round-trip contract; NaN-safe unlike operator== on double).
 */
bool metricsBitIdentical(const RunMetrics &a, const RunMetrics &b);

} // namespace crw

#endif // CRW_TRACE_RUN_METRICS_H_
