#include "trace/behavior.h"

#include "common/logging.h"

namespace crw {

BehaviorTracker::BehaviorTracker(int period_switches)
    : periodSwitches_(period_switches)
{
    crw_assert(period_switches >= 1);
}

void
BehaviorTracker::noteDepth(ThreadId tid, int depth)
{
    quantumRange_.note(depth);
    periodRanges_[tid].note(depth);
}

void
BehaviorTracker::onSave(ThreadId tid, int depth)
{
    crw_assert(tid == running_);
    noteDepth(tid, depth);
}

void
BehaviorTracker::onRestore(ThreadId tid, int depth)
{
    crw_assert(tid == running_);
    noteDepth(tid, depth);
}

void
BehaviorTracker::closeQuantum(Cycles now)
{
    if (running_ == kNoThread)
        return;
    activityPerQuantum_.sample(quantumRange_.span());
    granularity_.sample(static_cast<double>(now - quantumStart_));
}

void
BehaviorTracker::closePeriod()
{
    if (periodRanges_.empty())
        return;
    double total = 0;
    for (const auto &kv : periodRanges_)
        total += kv.second.span();
    totalActivity_.sample(total);
    concurrency_.sample(static_cast<double>(periodRanges_.size()));
    periodRanges_.clear();
    switchesInPeriod_ = 0;
}

void
BehaviorTracker::onSwitch(ThreadId from, ThreadId to, int to_depth,
                          Cycles begin, Cycles end)
{
    (void)from;
    closeQuantum(begin);
    running_ = to;
    quantumRange_ = DepthRange{};
    quantumStart_ = end;
    // The scheduled thread's current window counts as used right away
    // (its stack-top is demanded first, §3.1).
    noteDepth(to, to_depth);
    if (++switchesInPeriod_ >= periodSwitches_)
        closePeriod();
}

void
BehaviorTracker::onExit(ThreadId tid)
{
    (void)tid;
    // The quantum ends here; granularity is closed by the next switch
    // (or finish()). Nothing special to do: the thread's depth range
    // within the period remains counted.
}

void
BehaviorTracker::finish(Cycles now)
{
    closeQuantum(now);
    running_ = kNoThread;
    closePeriod();
}

} // namespace crw
