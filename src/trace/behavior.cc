#include "trace/behavior.h"

#include "common/logging.h"

namespace crw {

BehaviorTracker::BehaviorTracker(int period_switches)
    : periodSwitches_(period_switches)
{
    crw_assert(period_switches >= 1);
}

void
BehaviorTracker::closePeriod()
{
    if (touchedInPeriod_ == 0)
        return;
    // Untouched entries contribute span() == 0, so the sum (in
    // ascending-tid order) matches the old per-touched-thread one.
    double total = 0;
    for (const DepthRange &r : periodRanges_)
        total += r.span();
    totalActivity_.sample(total);
    concurrency_.sample(static_cast<double>(touchedInPeriod_));
    for (DepthRange &r : periodRanges_)
        r = DepthRange{};
    touchedInPeriod_ = 0;
    switchesInPeriod_ = 0;
}

void
BehaviorTracker::onExit(ThreadId tid)
{
    (void)tid;
    // The quantum ends here; granularity is closed by the next switch
    // (or finish()). Nothing special to do: the thread's depth range
    // within the period remains counted.
}

void
BehaviorTracker::finish(Cycles now)
{
    closeQuantum(now);
    running_ = kNoThread;
    closePeriod();
}

} // namespace crw
