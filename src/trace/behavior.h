/**
 * @file
 * Program-behavior instrumentation, paper §5.
 *
 * Definitions implemented here (quoted terms from the paper):
 *
 *  - "Window activity per thread": the number of windows used between
 *    two successive context switches, assuming an infinite number of
 *    windows; a repeatedly-used window counts once. With infinite
 *    windows every call depth maps to a unique window, and the depths
 *    visited in a scheduling quantum form a contiguous range, so the
 *    activity equals maxDepth - minDepth + 1 over the quantum.
 *
 *  - "Total window activity": the number of windows used during a
 *    given period under the same assumption — the sum over threads of
 *    each thread's depth-range size within the period. Measured over
 *    fixed-length periods of context switches.
 *
 *  - "Concurrency": the number of distinct threads scheduled at least
 *    once during a period.
 *
 *  - "Granularity": execution run length between two successive
 *    context switches (cycles per scheduling quantum).
 *
 *  - "Parallel slackness" is sampled by the Scheduler itself (ready
 *    queue length at dispatch).
 *
 * These metrics are scheme-independent whenever scheduling is FIFO
 * (the paper's Table 1 argument), which the tests verify.
 */

#ifndef CRW_TRACE_BEHAVIOR_H_
#define CRW_TRACE_BEHAVIOR_H_

#include <limits>
#include <vector>

#include "common/stats.h"
#include "common/types.h"
#include "win/engine.h"

namespace crw {

/**
 * EngineObserver computing the §5 behavior metrics. Install with
 * WindowEngine::setObserver before running; read the distributions
 * afterwards (finish() flushes the final quantum/period).
 */
class BehaviorTracker final : public EngineObserver
{
  public:
    /**
     * @param period_switches Length, in context switches, of the
     *        period over which total window activity and concurrency
     *        are measured.
     */
    explicit BehaviorTracker(int period_switches = 64);

    // The per-event hooks are defined inline below: the replay driver
    // calls them directly on the concrete (final) tracker, so they
    // flatten into its dispatch loop instead of going through the
    // virtual observer boundary.
    void onSave(ThreadId tid, int depth) override;
    void onRestore(ThreadId tid, int depth) override;
    void onSwitch(ThreadId from, ThreadId to, int to_depth,
                  Cycles begin, Cycles end) override;
    void onExit(ThreadId tid) override;

    /** Flush the in-progress quantum and period. Call once at end. */
    void finish(Cycles now);

    /** Windows used per scheduling quantum (activity per thread). */
    const Distribution &activityPerQuantum() const
    {
        return activityPerQuantum_;
    }

    /** Sum of per-thread window footprints per period. */
    const Distribution &totalWindowActivity() const
    {
        return totalActivity_;
    }

    /** Distinct threads scheduled per period. */
    const Distribution &concurrency() const { return concurrency_; }

    /** Cycles per scheduling quantum. */
    const Distribution &granularityCycles() const
    {
        return granularity_;
    }

    std::uint64_t quanta() const
    {
        return activityPerQuantum_.count();
    }

  private:
    void noteDepth(ThreadId tid, int depth);
    void closeQuantum(Cycles now);
    void closePeriod();

    struct DepthRange
    {
        // Empty is encoded as an inverted range so note() needs no
        // touched flag: both extreme updates are branch-free min/max
        // (noteDepth runs on every save/restore and switch).
        int minDepth = std::numeric_limits<int>::max();
        int maxDepth = std::numeric_limits<int>::min();

        void
        note(int depth)
        {
            minDepth = depth < minDepth ? depth : minDepth;
            maxDepth = depth > maxDepth ? depth : maxDepth;
        }

        bool touched() const { return minDepth <= maxDepth; }

        int span() const { return touched() ? maxDepth - minDepth + 1 : 0; }
    };

    int periodSwitches_;

    // Current quantum.
    ThreadId running_ = kNoThread;
    DepthRange quantumRange_;
    Cycles quantumStart_ = 0;

    // Current period. periodRanges_ is indexed by ThreadId (grown on
    // demand); touchedInPeriod_ counts touched entries, i.e. the
    // distinct threads scheduled this period.
    int switchesInPeriod_ = 0;
    std::vector<DepthRange> periodRanges_;
    int touchedInPeriod_ = 0;

    Distribution activityPerQuantum_;
    Distribution totalActivity_;
    Distribution concurrency_;
    Distribution granularity_;
};

inline void
BehaviorTracker::noteDepth(ThreadId tid, int depth)
{
    quantumRange_.note(depth);
    if (tid >= static_cast<ThreadId>(periodRanges_.size()))
        periodRanges_.resize(static_cast<std::size_t>(tid) + 1);
    DepthRange &r = periodRanges_[static_cast<std::size_t>(tid)];
    touchedInPeriod_ += static_cast<int>(!r.touched());
    r.note(depth);
}

inline void
BehaviorTracker::onSave(ThreadId tid, int depth)
{
    crw_assert(tid == running_);
    noteDepth(tid, depth);
}

inline void
BehaviorTracker::onRestore(ThreadId tid, int depth)
{
    crw_assert(tid == running_);
    noteDepth(tid, depth);
}

inline void
BehaviorTracker::closeQuantum(Cycles now)
{
    if (running_ == kNoThread)
        return;
    activityPerQuantum_.sample(quantumRange_.span());
    granularity_.sample(static_cast<double>(now - quantumStart_));
}

inline void
BehaviorTracker::onSwitch(ThreadId from, ThreadId to, int to_depth,
                          Cycles begin, Cycles end)
{
    (void)from;
    closeQuantum(begin);
    running_ = to;
    quantumRange_ = DepthRange{};
    quantumStart_ = end;
    // The scheduled thread's current window counts as used right away
    // (its stack-top is demanded first, §3.1).
    noteDepth(to, to_depth);
    if (++switchesInPeriod_ >= periodSwitches_)
        closePeriod();
}

} // namespace crw

#endif // CRW_TRACE_BEHAVIOR_H_
