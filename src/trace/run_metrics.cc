#include "trace/run_metrics.h"

#include <cstring>

#include "common/byteio.h"

namespace crw {
namespace {

constexpr char kMetricsMagic[8] = {'C', 'R', 'W', 'M',
                                   'E', 'T', 'R', 'S'};

void
encodeMetricsPayload(const RunMetrics &m, const std::string &key,
                     ByteWriter &w)
{
    w.str(key);
    w.u32(static_cast<std::uint32_t>(m.scheme));
    w.u32(static_cast<std::uint32_t>(m.policy));
    w.u32(static_cast<std::uint32_t>(m.windows));
    w.u64(m.totalCycles);
    w.u64(m.switches);
    w.u64(m.saves);
    w.u64(m.restores);
    w.u64(m.overflowTraps);
    w.u64(m.underflowTraps);
    w.u64(m.switchWindowsSaved);
    w.u64(m.switchWindowsRestored);
    w.f64(m.meanSwitchCost);
    w.f64(m.trapProbability);
    w.f64(m.activityPerQuantum);
    w.f64(m.totalWindowActivity);
    w.f64(m.concurrency);
    w.f64(m.meanSlackness);
    w.u64(m.misspelled);
    w.u32(static_cast<std::uint32_t>(m.perThread.size()));
    for (const ThreadCounters &t : m.perThread) {
        w.u64(t.saves);
        w.u64(t.restores);
        w.u64(t.switchesIn);
    }
}

bool
bitEqual(double a, double b)
{
    return std::memcmp(&a, &b, sizeof a) == 0;
}

} // namespace

RunMetrics
collectRunMetrics(const WindowEngine &engine,
                  const BehaviorTracker &tracker,
                  const Distribution &slackness, SchedPolicy policy,
                  int num_threads, std::size_t misspelled)
{
    const StatGroup &s = engine.stats();
    RunMetrics m;
    m.scheme = engine.scheme();
    m.policy = policy;
    m.windows = engine.numWindows();
    m.totalCycles = engine.now();
    m.switches = s.counterValue("switches");
    m.saves = s.counterValue("saves");
    m.restores = s.counterValue("restores");
    m.overflowTraps = s.counterValue("overflow_traps");
    m.underflowTraps = s.counterValue("underflow_traps");
    m.switchWindowsSaved = s.counterValue("switch_windows_saved");
    m.switchWindowsRestored =
        s.counterValue("switch_windows_restored");
    m.meanSwitchCost = s.distributions().at("switch_cost").mean();
    const double ops = static_cast<double>(m.saves + m.restores);
    m.trapProbability =
        ops > 0 ? static_cast<double>(m.overflowTraps +
                                      m.underflowTraps) /
                      ops
                : 0.0;
    m.activityPerQuantum = tracker.activityPerQuantum().mean();
    m.totalWindowActivity = tracker.totalWindowActivity().mean();
    m.concurrency = tracker.concurrency().mean();
    m.meanSlackness = slackness.mean();
    m.misspelled = misspelled;
    for (ThreadId tid = 0; tid < num_threads; ++tid)
        m.perThread.push_back(engine.threadCounters(tid));
    return m;
}

std::vector<std::uint8_t>
encodeMetricsRecord(const RunMetrics &metrics, const std::string &key)
{
    ByteWriter payload;
    encodeMetricsPayload(metrics, key, payload);
    return std::move(payload.bytes);
}

bool
decodeMetricsRecord(const std::uint8_t *data, std::size_t n,
                    const std::string &expected_key, RunMetrics &out,
                    bool *key_mismatch)
{
    if (key_mismatch)
        *key_mismatch = false;
    ByteReader r{data, data + n};
    const std::string stored_key = r.str();
    if (!r.ok)
        return false;
    if (stored_key != expected_key) {
        if (key_mismatch)
            *key_mismatch = true;
        return false;
    }

    RunMetrics m;
    m.scheme = static_cast<SchemeKind>(r.u32());
    m.policy = static_cast<SchedPolicy>(r.u32());
    m.windows = static_cast<int>(r.u32());
    m.totalCycles = static_cast<Cycles>(r.u64());
    m.switches = r.u64();
    m.saves = r.u64();
    m.restores = r.u64();
    m.overflowTraps = r.u64();
    m.underflowTraps = r.u64();
    m.switchWindowsSaved = r.u64();
    m.switchWindowsRestored = r.u64();
    m.meanSwitchCost = r.f64();
    m.trapProbability = r.f64();
    m.activityPerQuantum = r.f64();
    m.totalWindowActivity = r.f64();
    m.concurrency = r.f64();
    m.meanSlackness = r.f64();
    m.misspelled = static_cast<std::size_t>(r.u64());
    const std::uint32_t num_threads = r.u32();
    for (std::uint32_t i = 0; r.ok && i < num_threads; ++i) {
        ThreadCounters t;
        t.saves = r.u64();
        t.restores = r.u64();
        t.switchesIn = r.u64();
        m.perThread.push_back(t);
    }
    if (!r.ok || r.p != r.end)
        return false;
    out = std::move(m);
    return true;
}

namespace {

/**
 * Shared CRWMETRS frame validation: on success @p payload / @p size
 * delimit the record payload inside @p bytes.
 */
MetricsLoadStatus
checkMetricsFrame(const std::vector<std::uint8_t> &bytes,
                  const std::uint8_t **payload, std::size_t *size,
                  std::string *error)
{
    auto fail = [error](const std::string &why) {
        if (error)
            *error = why;
    };
    // 8 magic + 4 version + 8 trailing checksum.
    if (bytes.size() < 20) {
        fail("truncated header");
        return MetricsLoadStatus::Malformed;
    }
    if (std::memcmp(bytes.data(), kMetricsMagic, 8) != 0) {
        fail("bad magic (not a crw metrics record)");
        return MetricsLoadStatus::Malformed;
    }
    ByteReader header{bytes.data() + 8, bytes.data() + bytes.size()};
    const std::uint32_t version = header.u32();
    if (version != kRunMetricsFormatVersion) {
        fail("unsupported metrics version " + std::to_string(version));
        return MetricsLoadStatus::VersionMismatch;
    }
    *payload = bytes.data() + 12;
    *size = bytes.size() - 20;
    ByteReader csum{bytes.data() + bytes.size() - 8,
                    bytes.data() + bytes.size()};
    if (fnv1a64(*payload, *size) != csum.u64()) {
        fail("checksum mismatch (corrupted metrics record)");
        return MetricsLoadStatus::Malformed;
    }
    return MetricsLoadStatus::Ok;
}

} // namespace

bool
saveMetricsFile(const RunMetrics &metrics, const std::string &key,
                const std::string &path, std::string *error)
{
    const std::vector<std::uint8_t> payload =
        encodeMetricsRecord(metrics, key);

    ByteWriter file;
    file.bytes.insert(file.bytes.end(), kMetricsMagic,
                      kMetricsMagic + 8);
    file.u32(kRunMetricsFormatVersion);
    file.bytes.insert(file.bytes.end(), payload.begin(),
                      payload.end());
    file.u64(fnv1a64(payload.data(), payload.size()));

    return writeFileAtomic(file.bytes, path, error);
}

bool
loadMetricsFile(const std::string &path,
                const std::string &expected_key, RunMetrics &out,
                std::string *error, MetricsLoadStatus *status)
{
    auto fail = [error, status](MetricsLoadStatus st,
                                const std::string &why) {
        if (error)
            *error = why;
        if (status)
            *status = st;
        return false;
    };

    std::vector<std::uint8_t> bytes;
    std::string io_err;
    if (!readFileBytes(path, bytes, &io_err))
        return fail(MetricsLoadStatus::NotFound, io_err);

    const std::uint8_t *payload = nullptr;
    std::size_t payload_size = 0;
    const MetricsLoadStatus frame =
        checkMetricsFrame(bytes, &payload, &payload_size, error);
    if (frame != MetricsLoadStatus::Ok) {
        if (status)
            *status = frame;
        return false;
    }

    bool key_mismatch = false;
    if (!decodeMetricsRecord(payload, payload_size, expected_key, out,
                             &key_mismatch)) {
        if (key_mismatch)
            return fail(MetricsLoadStatus::KeyMismatch,
                        "identity key mismatch");
        return fail(MetricsLoadStatus::Malformed,
                    "malformed payload");
    }
    if (status)
        *status = MetricsLoadStatus::Ok;
    return true;
}

bool
peekMetricsFileKey(const std::string &path, std::string &key_out)
{
    std::vector<std::uint8_t> bytes;
    if (!readFileBytes(path, bytes, nullptr))
        return false;
    const std::uint8_t *payload = nullptr;
    std::size_t payload_size = 0;
    if (checkMetricsFrame(bytes, &payload, &payload_size, nullptr) !=
        MetricsLoadStatus::Ok)
        return false;
    ByteReader r{payload, payload + payload_size};
    key_out = r.str();
    return r.ok;
}

bool
metricsBitIdentical(const RunMetrics &a, const RunMetrics &b)
{
    if (a.scheme != b.scheme || a.policy != b.policy ||
        a.windows != b.windows || a.totalCycles != b.totalCycles ||
        a.switches != b.switches || a.saves != b.saves ||
        a.restores != b.restores ||
        a.overflowTraps != b.overflowTraps ||
        a.underflowTraps != b.underflowTraps ||
        a.switchWindowsSaved != b.switchWindowsSaved ||
        a.switchWindowsRestored != b.switchWindowsRestored ||
        a.misspelled != b.misspelled)
        return false;
    if (!bitEqual(a.meanSwitchCost, b.meanSwitchCost) ||
        !bitEqual(a.trapProbability, b.trapProbability) ||
        !bitEqual(a.activityPerQuantum, b.activityPerQuantum) ||
        !bitEqual(a.totalWindowActivity, b.totalWindowActivity) ||
        !bitEqual(a.concurrency, b.concurrency) ||
        !bitEqual(a.meanSlackness, b.meanSlackness))
        return false;
    if (a.perThread.size() != b.perThread.size())
        return false;
    for (std::size_t i = 0; i < a.perThread.size(); ++i) {
        if (a.perThread[i].saves != b.perThread[i].saves ||
            a.perThread[i].restores != b.perThread[i].restores ||
            a.perThread[i].switchesIn != b.perThread[i].switchesIn)
            return false;
    }
    return true;
}

} // namespace crw
