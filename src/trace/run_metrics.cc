#include "trace/run_metrics.h"

namespace crw {

RunMetrics
collectRunMetrics(const WindowEngine &engine,
                  const BehaviorTracker &tracker,
                  const Distribution &slackness, SchedPolicy policy,
                  int num_threads, std::size_t misspelled)
{
    const StatGroup &s = engine.stats();
    RunMetrics m;
    m.scheme = engine.scheme();
    m.policy = policy;
    m.windows = engine.numWindows();
    m.totalCycles = engine.now();
    m.switches = s.counterValue("switches");
    m.saves = s.counterValue("saves");
    m.restores = s.counterValue("restores");
    m.overflowTraps = s.counterValue("overflow_traps");
    m.underflowTraps = s.counterValue("underflow_traps");
    m.switchWindowsSaved = s.counterValue("switch_windows_saved");
    m.switchWindowsRestored =
        s.counterValue("switch_windows_restored");
    m.meanSwitchCost = s.distributions().at("switch_cost").mean();
    const double ops = static_cast<double>(m.saves + m.restores);
    m.trapProbability =
        ops > 0 ? static_cast<double>(m.overflowTraps +
                                      m.underflowTraps) /
                      ops
                : 0.0;
    m.activityPerQuantum = tracker.activityPerQuantum().mean();
    m.totalWindowActivity = tracker.totalWindowActivity().mean();
    m.concurrency = tracker.concurrency().mean();
    m.meanSlackness = slackness.mean();
    m.misspelled = misspelled;
    for (ThreadId tid = 0; tid < num_threads; ++tid)
        m.perThread.push_back(engine.threadCounters(tid));
    return m;
}

} // namespace crw
