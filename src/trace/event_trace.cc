#include "trace/event_trace.h"

#include <cstring>

#include "common/byteio.h"
#include "common/logging.h"

namespace crw {
namespace {

// Tag byte: kind in the high nibble, small operand in the low nibble.
// Operand 0..14 is stored inline; 15 means an LEB128 varint follows.
constexpr std::uint8_t kInlineMax = 14;
constexpr std::uint8_t kSpill = 15;

constexpr char kMagic[8] = {'C', 'R', 'W', 'T', 'R', 'A', 'C', 'E'};

void
appendVarint(std::vector<std::uint8_t> &out, std::uint64_t v)
{
    while (v >= 0x80) {
        out.push_back(static_cast<std::uint8_t>(v) | 0x80);
        v >>= 7;
    }
    out.push_back(static_cast<std::uint8_t>(v));
}

// The exact byte sequence saveTraceFile() checksums and writes between
// the version word and the trailing checksum; traceChecksum() hashes
// the same bytes so an in-memory trace and its file agree on identity.
void
encodeTracePayload(const EventTrace &trace, ByteWriter &payload)
{
    payload.str(trace.key);
    payload.u64(trace.seed);
    payload.u64(trace.corpusBytes);
    payload.u64(trace.misspelled);
    payload.u64(trace.wordsFromDelatex);
    payload.u32(static_cast<std::uint32_t>(trace.streams.size()));
    for (const TraceStreamInfo &s : trace.streams) {
        payload.str(s.name);
        payload.u32(s.capacity);
        payload.u32(s.writers);
    }
    payload.u32(static_cast<std::uint32_t>(trace.threads.size()));
    for (const TraceThreadInfo &t : trace.threads) {
        payload.str(t.name);
        payload.u32(t.priority); // format v2
        payload.blob(t.code);
    }
}

} // namespace

std::uint64_t
EventTrace::eventCount() const
{
    std::uint64_t n = 0;
    for (const TraceThreadInfo &t : threads) {
        TraceCursor cur(t.code);
        std::uint64_t operand;
        while (!cur.atEnd()) {
            cur.peek(operand);
            cur.advance();
            ++n;
        }
    }
    return n;
}

TraceOp
TraceCursor::peek(std::uint64_t &operand) const
{
    crw_assert(pc_ != end_);
    const std::uint8_t tag = *pc_;
    const TraceOp op = static_cast<TraceOp>(tag >> 4);
    const std::uint8_t low = tag & 0x0F;
    const std::uint8_t *p = pc_ + 1;
    if (low != kSpill) {
        operand = low;
    } else {
        std::uint64_t v = 0;
        int shift = 0;
        while (true) {
            crw_assert(p != end_);
            const std::uint8_t b = *p++;
            v |= static_cast<std::uint64_t>(b & 0x7F) << shift;
            if (!(b & 0x80))
                break;
            shift += 7;
        }
        operand = v;
    }
    next_ = p;
    return op;
}

void
TraceCursor::advance()
{
    crw_assert(next_ != nullptr);
    pc_ = next_;
    next_ = nullptr;
}

TraceRecorder::TraceRecorder(std::string key, std::uint64_t seed,
                             std::uint64_t corpus_bytes)
{
    trace_.key = std::move(key);
    trace_.seed = seed;
    trace_.corpusBytes = corpus_bytes;
}

std::vector<std::uint8_t> &
TraceRecorder::code(ThreadId tid)
{
    crw_assert(tid >= 0 &&
               tid < static_cast<ThreadId>(trace_.threads.size()));
    return trace_.threads[static_cast<std::size_t>(tid)].code;
}

void
TraceRecorder::onThreadSpawn(ThreadId tid, const std::string &name,
                             std::uint8_t priority)
{
    if (tid != static_cast<ThreadId>(trace_.threads.size()))
        crw_fatal << "trace capture: thread ids must be dense spawn "
                     "order, got "
                  << tid;
    trace_.threads.push_back(TraceThreadInfo{name, priority, {}});
    pendingCharge_.push_back(0);
}

int
TraceRecorder::onStreamCreate(const std::string &name,
                              std::size_t capacity, int num_writers)
{
    TraceStreamInfo info;
    info.name = name;
    info.capacity = static_cast<std::uint32_t>(capacity);
    info.writers = static_cast<std::uint32_t>(num_writers);
    trace_.streams.push_back(std::move(info));
    return static_cast<int>(trace_.streams.size()) - 1;
}

void
TraceRecorder::emit(ThreadId tid, TraceOp op, std::uint64_t operand)
{
    std::vector<std::uint8_t> &out = code(tid);
    const std::uint8_t high = static_cast<std::uint8_t>(op) << 4;
    if (operand <= kInlineMax) {
        out.push_back(high | static_cast<std::uint8_t>(operand));
    } else {
        out.push_back(high | kSpill);
        appendVarint(out, operand);
    }
}

void
TraceRecorder::flushCharge(ThreadId tid)
{
    std::uint64_t &pending =
        pendingCharge_[static_cast<std::size_t>(tid)];
    if (pending != 0) {
        emit(tid, TraceOp::Charge, pending);
        pending = 0;
    }
}

void
TraceRecorder::recordSave(ThreadId tid)
{
    flushCharge(tid);
    emit(tid, TraceOp::Save, 0);
}

void
TraceRecorder::recordRestore(ThreadId tid)
{
    flushCharge(tid);
    emit(tid, TraceOp::Restore, 0);
}

void
TraceRecorder::recordCharge(ThreadId tid, Cycles cycles)
{
    // Coalesce with an immediately preceding charge: the engine's
    // clock and cycle counters cannot tell two back-to-back charges
    // from their sum.
    pendingCharge_[static_cast<std::size_t>(tid)] +=
        static_cast<std::uint64_t>(cycles);
}

void
TraceRecorder::recordPut(ThreadId tid, int stream_id)
{
    flushCharge(tid);
    emit(tid, TraceOp::Put, static_cast<std::uint64_t>(stream_id));
}

void
TraceRecorder::recordGet(ThreadId tid, int stream_id)
{
    flushCharge(tid);
    emit(tid, TraceOp::Get, static_cast<std::uint64_t>(stream_id));
}

void
TraceRecorder::recordClose(ThreadId tid, int stream_id)
{
    flushCharge(tid);
    emit(tid, TraceOp::Close, static_cast<std::uint64_t>(stream_id));
}

void
TraceRecorder::recordExit(ThreadId tid)
{
    flushCharge(tid);
    emit(tid, TraceOp::Exit, 0);
}

EventTrace
TraceRecorder::take(std::uint64_t misspelled,
                    std::uint64_t words_from_delatex)
{
    for (ThreadId tid = 0;
         tid < static_cast<ThreadId>(trace_.threads.size()); ++tid)
        flushCharge(tid);
    trace_.misspelled = misspelled;
    trace_.wordsFromDelatex = words_from_delatex;
    return std::move(trace_);
}

std::uint64_t
traceChecksum(const EventTrace &trace)
{
    ByteWriter payload;
    encodeTracePayload(trace, payload);
    return fnv1a64(payload.bytes.data(), payload.bytes.size());
}

bool
saveTraceFile(const EventTrace &trace, const std::string &path,
              std::string *error)
{
    ByteWriter payload;
    encodeTracePayload(trace, payload);

    ByteWriter file;
    file.bytes.insert(file.bytes.end(), kMagic, kMagic + 8);
    file.u32(kTraceFormatVersion);
    file.bytes.insert(file.bytes.end(), payload.bytes.begin(),
                      payload.bytes.end());
    file.u64(fnv1a64(payload.bytes.data(), payload.bytes.size()));

    return writeFileAtomic(file.bytes, path, error);
}

bool
validateTraceCode(const std::vector<std::uint8_t> &code,
                  std::size_t num_streams, std::string *error)
{
    auto fail = [error](const std::string &why) {
        if (error)
            *error = why;
        return false;
    };

    const std::uint8_t *p = code.data();
    const std::uint8_t *const end = p + code.size();
    while (p != end) {
        const std::size_t at =
            static_cast<std::size_t>(p - code.data());
        const std::uint8_t tag = *p++;
        const std::uint8_t high = tag >> 4;
        if (high > static_cast<std::uint8_t>(TraceOp::Exit))
            return fail("unknown event op " + std::to_string(high) +
                        " at offset " + std::to_string(at));
        const TraceOp op = static_cast<TraceOp>(high);
        std::uint64_t operand = tag & 0x0F;
        if (operand == kSpill) {
            std::uint64_t v = 0;
            int shift = 0;
            while (true) {
                if (p == end)
                    return fail("truncated varint at offset " +
                                std::to_string(at));
                if (shift > 63)
                    return fail("oversized varint at offset " +
                                std::to_string(at));
                const std::uint8_t b = *p++;
                v |= static_cast<std::uint64_t>(b & 0x7F) << shift;
                if (!(b & 0x80))
                    break;
                shift += 7;
            }
            operand = v;
        }
        if ((op == TraceOp::Put || op == TraceOp::Get ||
             op == TraceOp::Close) &&
            operand >= num_streams)
            return fail("stream id " + std::to_string(operand) +
                        " out of range at offset " +
                        std::to_string(at));
    }
    return true;
}

bool
loadTraceFile(const std::string &path, EventTrace &out,
              std::string *error)
{
    auto fail = [error](const std::string &why) {
        if (error)
            *error = why;
        return false;
    };

    std::vector<std::uint8_t> bytes;
    std::string io_err;
    if (!readFileBytes(path, bytes, &io_err))
        return fail(io_err);

    // 8 magic + 4 version + 8 trailing checksum.
    if (bytes.size() < 20)
        return fail("truncated header");
    if (std::memcmp(bytes.data(), kMagic, 8) != 0)
        return fail("bad magic (not a crw trace)");

    ByteReader header{bytes.data() + 8, bytes.data() + bytes.size()};
    const std::uint32_t version = header.u32();
    if (version != kTraceFormatVersion)
        return fail("unsupported trace version " +
                    std::to_string(version));

    const std::uint8_t *payload = bytes.data() + 12;
    const std::size_t payload_size = bytes.size() - 20;
    ByteReader csum{bytes.data() + bytes.size() - 8,
                bytes.data() + bytes.size()};
    if (fnv1a64(payload, payload_size) != csum.u64())
        return fail("checksum mismatch (corrupted trace)");

    ByteReader r{payload, payload + payload_size};
    EventTrace t;
    t.key = r.str();
    t.seed = r.u64();
    t.corpusBytes = r.u64();
    t.misspelled = r.u64();
    t.wordsFromDelatex = r.u64();
    const std::uint32_t num_streams = r.u32();
    for (std::uint32_t i = 0; r.ok && i < num_streams; ++i) {
        TraceStreamInfo s;
        s.name = r.str();
        s.capacity = r.u32();
        s.writers = r.u32();
        t.streams.push_back(std::move(s));
    }
    const std::uint32_t num_threads = r.u32();
    for (std::uint32_t i = 0; r.ok && i < num_threads; ++i) {
        TraceThreadInfo th;
        th.name = r.str();
        th.priority = static_cast<std::uint8_t>(r.u32());
        th.code = r.blob();
        t.threads.push_back(std::move(th));
    }
    if (!r.ok || r.p != r.end)
        return fail("malformed payload");
    // The checksum catches accidental corruption, but a trace could
    // still carry scripts the check-free TraceCursor must never see
    // (e.g. written by a buggy or adversarial producer).
    for (std::size_t i = 0; i < t.threads.size(); ++i) {
        std::string why;
        if (!validateTraceCode(t.threads[i].code, t.streams.size(),
                               &why))
            return fail("invalid event script in thread " +
                        std::to_string(i) + " (" + t.threads[i].name +
                        "): " + why);
    }
    out = std::move(t);
    return true;
}

} // namespace crw
