/**
 * @file
 * The replay state machine's control-state types, shared by the
 * per-point ReplayDriver (replay_driver.h) and the lockstep batched
 * driver (replay_batch.h). One schedule is one instance of this
 * state: a SchedCore, one RStream per bounded stream, one RThread per
 * application thread. The per-point driver pairs it with a single
 * engine; the batched driver drives K engines from the same instance,
 * which is exactly what makes a batch lockstep — control flow lives
 * here and only here, engine state lives per lane.
 */

#ifndef CRW_TRACE_REPLAY_STATE_H_
#define CRW_TRACE_REPLAY_STATE_H_

#include <cstdint>

#include "common/small_vec.h"
#include "common/types.h"
#include "trace/event_trace.h"

namespace crw {

/**
 * Replay image of one bounded stream (occupancy + waiters). The
 * waiter lists hold at most one entry per application thread, so the
 * inline capacity makes parking/waking allocation-free.
 */
struct RStream
{
    std::uint32_t capacity = 0;
    std::uint32_t count = 0;
    int openWriters = 0;
    SmallVec<ThreadId, 8> readWaiters;
    SmallVec<ThreadId, 8> writeWaiters;
};

enum class RState : std::uint8_t {
    Ready,
    Running,
    Blocked,
    Finished
};

struct RThread
{
    TraceCursor cursor;
    /** Fast/batched loops: index of the next event in the flat arena. */
    std::uint32_t pc = 0;
    RState state = RState::Ready;
};

} // namespace crw

#endif // CRW_TRACE_REPLAY_STATE_H_
