#include "trace/flat_trace_io.h"

#include <cstdio>
#include <cstring>

#include "store/arena.h"

namespace crw {

namespace {

std::string
hex16(std::uint64_t v)
{
    char buf[17];
    std::snprintf(buf, sizeof buf, "%016llx",
                  static_cast<unsigned long long>(v));
    return buf;
}

bool
fail(std::string *error, const std::string &why)
{
    if (error)
        *error = why;
    return false;
}

} // namespace

std::string
flatTraceKey(std::uint64_t trace_checksum)
{
    return "flat|trace=" + hex16(trace_checksum) + "|v" +
           std::to_string(kFlatTraceFormatVersion);
}

std::string
flatTraceFileName(std::uint64_t trace_checksum)
{
    return "c" + hex16(trace_checksum) + ".flat";
}

bool
saveFlatTrace(const FlatTrace &flat, std::uint64_t trace_checksum,
              const std::string &path, std::string *error)
{
    store::ArenaBuilder builder(kFlatTraceFormatVersion,
                                flatTraceKey(trace_checksum));
    builder.addSegment("ops", flat.ops, flat.events);
    builder.addSegment("operands", flat.operands,
                       flat.events * sizeof(std::uint64_t));
    std::vector<std::uint32_t> spans;
    spans.reserve(flat.threads.size() * 2);
    for (const FlatTrace::Span &s : flat.threads) {
        spans.push_back(s.begin);
        spans.push_back(s.end);
    }
    builder.addSegment("spans", spans.data(),
                       spans.size() * sizeof(std::uint32_t));
    return builder.write(path, error);
}

bool
loadFlatTrace(const std::string &path, std::uint64_t trace_checksum,
              FlatTrace &out, std::string *error)
{
    store::ArenaView view;
    if (!store::ArenaView::attach(path, kFlatTraceFormatVersion,
                                  flatTraceKey(trace_checksum), view,
                                  error))
        return false;
    // The replay hot loop runs check-free over these bytes, so this
    // is the one place the payload hash is actually verified.
    if (!view.verifyPayload())
        return fail(error, "flat trace: payload checksum mismatch");

    std::uint64_t ops_bytes = 0, operand_bytes = 0, span_bytes = 0;
    const void *ops = view.segment("ops", &ops_bytes);
    const void *operands = view.segment("operands", &operand_bytes);
    const void *spans = view.segment("spans", &span_bytes);
    if (!ops || !operands || !spans)
        return fail(error, "flat trace: missing segment");
    if (ops_bytes > UINT32_MAX ||
        operand_bytes != ops_bytes * sizeof(std::uint64_t) ||
        span_bytes % (2 * sizeof(std::uint32_t)) != 0)
        return fail(error, "flat trace: segment sizes disagree");

    const std::uint32_t events =
        static_cast<std::uint32_t>(ops_bytes);
    const std::size_t thread_count =
        span_bytes / (2 * sizeof(std::uint32_t));
    std::vector<FlatTrace::Span> threads(thread_count);
    std::memcpy(threads.data(), spans, span_bytes);
    // Spans must tile [0, events) in thread order — the same shape
    // FlatTrace::build produces and the replay driver indexes by.
    std::uint32_t expected_begin = 0;
    for (const FlatTrace::Span &s : threads) {
        if (s.begin != expected_begin || s.end < s.begin ||
            s.end > events)
            return fail(error, "flat trace: span table malformed");
        expected_begin = s.end;
    }
    if (expected_begin != events)
        return fail(error, "flat trace: spans do not cover the arena");

    out.opsStorage.clear();
    out.operandStorage.clear();
    out.arena = std::move(view);
    out.ops = static_cast<const std::uint8_t *>(
        out.arena.segment("ops", &ops_bytes));
    out.operands = static_cast<const std::uint64_t *>(
        out.arena.segment("operands", &operand_bytes));
    out.events = events;
    out.threads = std::move(threads);
    return true;
}

} // namespace crw
