/**
 * @file
 * Deterministic synthetic-behavior generator (DESIGN.md §15).
 *
 * The spell checker exercises exactly one communication topology and
 * one call-depth profile, so every sweep judged the CRW schemes on a
 * single corner of the scenario space. generateSynthTrace() emits
 * versioned EventTraces directly — no live coroutine run — from a
 * parameterized SynthSpec: communication topology (pipeline,
 * fan-in/fan-out, producer-consumer token ring), thread count, seeded
 * call-depth distributions, per-thread static priorities (the input
 * SchedPolicy::Priority schedules on), and optional lock-contention
 * segments in which every thread ping-pongs a capacity-1 token stream
 * — blocked threads there induce the switch storms that stress window
 * residency very differently from smooth FIFO streams.
 *
 * Determinism contract: the emitted trace is a pure function of the
 * SynthSpec (all randomness comes from one Rng seeded with spec.seed,
 * consumed in a fixed thread-by-thread order), so the same spec
 * yields byte-identical trace files, checksums and replay results on
 * every host and at every --jobs count. scripts are built through
 * TraceRecorder, so they are well-formed by construction (charge
 * coalescing included) and replay through the exact machinery the
 * captured spell traces use.
 *
 * Liveness: every topology is a Kahn network whose puts and gets are
 * exactly matched per stream (writers close after their last put), and
 * the ring primes at most `streamCapacity` tokens and strictly
 * get-then-puts thereafter, so the in-flight token count can never
 * exceed any buffer — replays cannot deadlock at any window/scheme/
 * policy point. The lock stream is never closed (a get on it must
 * park, never EOF) and holders always return the token, so every
 * contender makes progress.
 */

#ifndef CRW_TRACE_SYNTH_H_
#define CRW_TRACE_SYNTH_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.h"
#include "trace/event_trace.h"

namespace crw {

/**
 * Bump when the generator's emission logic changes in any way that
 * alters the bytes it produces: the version is part of synthTraceKey,
 * so stale cached traces (and every point result derived from them)
 * are invalidated rather than silently reused.
 */
inline constexpr std::uint32_t kSynthGenVersion = 1;

/** One parameterized synthetic behavior. */
struct SynthSpec
{
    /** Communication topology of the generated Kahn network. */
    enum class Topology : std::uint8_t {
        Pipeline, ///< linear chain: stage i feeds stage i+1
        FanInOut, ///< source → W workers → sink (scatter/gather)
        Ring,     ///< producer-consumer token ring (circular)
    };

    Topology topology = Topology::Pipeline;

    /**
     * Worker threads. Pipeline: total stages (>= 2). FanInOut:
     * workers W (total threads W + 2 with source and sink). Ring:
     * ring size (>= 2).
     */
    int threads = 4;

    /** Work items flowing through the topology. */
    int items = 256;

    /** Capacity of every data stream (>= 1; small values block). */
    int streamCapacity = 1;

    // Call-depth distribution of the per-item work: each item runs a
    // balanced save/charge…charge/restore walk to a depth drawn
    // uniformly from [meanDepth - depthJitter, meanDepth +
    // depthJitter] (clamped to >= 1).
    int meanDepth = 4;
    int depthJitter = 2;

    /** Mean compute charge between window events (jittered ±50%). */
    Cycles meanCharge = 40;

    /**
     * Lock-contention rounds per thread (0 = none). After its main
     * phase every thread contends `lockRounds` times on one shared
     * capacity-1 token stream: get token → critical-section walk →
     * put token. Thread 0 seeds the token at the start of its script.
     */
    int lockRounds = 0;

    /**
     * Assign rotating static priorities (tid·3 + 1 mod kNumLevels)
     * instead of all-zero, so SchedPolicy::Priority produces a
     * schedule genuinely different from FIFO.
     */
    bool prioritized = false;

    std::uint64_t seed = 1;
};

const char *synthTopologyName(SynthSpec::Topology topology);

/**
 * Canonical identity of a spec, e.g.
 * "synth-ring-t5-i300-c2-d4j2-ch40-l0-p1-g1". Every knob that affects
 * the emitted bytes appears (the seed is carried separately, in
 * EventTrace::seed and the trace file name, matching the spell key
 * convention). Keys the trace disk cache and, through the behavior
 * key, the result cache — so it must never collide across distinct
 * specs.
 */
std::string synthTraceKey(const SynthSpec &spec);

/**
 * Emit the spec's EventTrace. Pure function of @p spec (see file
 * comment); the result validates under validateTraceCode and replays
 * deadlock-free at every (scheme, windows, policy) point.
 */
EventTrace generateSynthTrace(const SynthSpec &spec);

/**
 * The `crw-bench synth` exhibit's behavior menu: one spec per
 * topology plus a lock-contention-heavy variant, all prioritized so
 * the full policy family differentiates.
 */
const std::vector<SynthSpec> &synthBehaviorMenu();

} // namespace crw

#endif // CRW_TRACE_SYNTH_H_
