/**
 * @file
 * FlatTrace: the predecoded, structure-of-arrays image of an
 * EventTrace, built once per trace and shared by every replay point.
 *
 * EventTrace stores each thread's script as a compact tag/varint byte
 * stream — right for the disk cache, wrong for the replay hot loop,
 * which would re-decode every event at every (scheme, windows, policy)
 * point of a sweep. FlatTrace pays the decode exactly once: two
 * parallel arenas (one op byte, one 64-bit operand per event) plus a
 * [begin, end) span per thread, so the replay driver's cursor is a
 * plain index into contiguous memory — no varint, no peek/advance
 * pair, no per-thread allocation.
 *
 * The flattening is a pure re-encoding: build() walks the exact
 * TraceCursor decode the legacy path uses, so a flat walk and a cursor
 * walk yield the same event sequence by construction
 * (tests/trace/test_flat_trace.cc pins this).
 */

#ifndef CRW_TRACE_FLAT_TRACE_H_
#define CRW_TRACE_FLAT_TRACE_H_

#include <cstdint>
#include <vector>

#include "trace/event_trace.h"

namespace crw {

struct FlatTrace
{
    /** One thread's [begin, end) range in the event arenas. */
    struct Span
    {
        std::uint32_t begin = 0;
        std::uint32_t end = 0;
    };

    /** TraceOp per event, in thread-script order. */
    std::vector<std::uint8_t> ops;
    /** Charge cycles or stream id per event (0 for Save/.../Exit). */
    std::vector<std::uint64_t> operands;
    /** Arena span of each thread, indexed by ThreadId (spawn order). */
    std::vector<Span> threads;

    std::size_t eventCount() const { return ops.size(); }

    /** Decode every thread script of @p trace into one flat arena. */
    static FlatTrace build(const EventTrace &trace);
};

} // namespace crw

#endif // CRW_TRACE_FLAT_TRACE_H_
