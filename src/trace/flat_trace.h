/**
 * @file
 * FlatTrace: the predecoded, structure-of-arrays image of an
 * EventTrace, built once per trace and shared by every replay point.
 *
 * EventTrace stores each thread's script as a compact tag/varint byte
 * stream — right for the disk cache, wrong for the replay hot loop,
 * which would re-decode every event at every (scheme, windows, policy)
 * point of a sweep. FlatTrace pays the decode exactly once: two
 * parallel arenas (one op byte, one 64-bit operand per event) plus a
 * [begin, end) span per thread, so the replay driver's cursor is a
 * plain index into contiguous memory — no varint, no peek/advance
 * pair, no per-thread allocation.
 *
 * The flattening is a pure re-encoding: build() walks the exact
 * TraceCursor decode the legacy path uses, so a flat walk and a cursor
 * walk yield the same event sequence by construction
 * (tests/trace/test_flat_trace.cc pins this).
 *
 * The arenas are exposed as pointer views because they have two
 * backings: build() decodes into vectors this struct owns, while
 * trace/flat_trace_io.h attaches the same SoA layout straight out of
 * an mmap'd arena file — a warm start pays neither the TraceCursor
 * walk nor a copy. Either way the replay hot loop sees the same two
 * raw pointers.
 */

#ifndef CRW_TRACE_FLAT_TRACE_H_
#define CRW_TRACE_FLAT_TRACE_H_

#include <cstdint>
#include <vector>

#include "common/aligned.h"
#include "store/arena.h"
#include "trace/event_trace.h"

namespace crw {

struct FlatTrace
{
    /** One thread's [begin, end) range in the event arenas. */
    struct Span
    {
        std::uint32_t begin = 0;
        std::uint32_t end = 0;
    };

    /** TraceOp per event, in thread-script order. */
    const std::uint8_t *ops = nullptr;
    /** Charge cycles or stream id per event (0 for Save/.../Exit). */
    const std::uint64_t *operands = nullptr;
    /** Number of events behind both arena pointers. */
    std::uint32_t events = 0;
    /** Arena span of each thread, indexed by ThreadId (spawn order). */
    std::vector<Span> threads;

    std::size_t eventCount() const { return events; }

    /** Decode every thread script of @p trace into one flat arena. */
    static FlatTrace build(const EventTrace &trace);

    // Moving transfers the backing (vector heap buffers or the mmap)
    // without invalidating the view pointers; copying would not, so
    // it is forbidden.
    FlatTrace() = default;
    FlatTrace(FlatTrace &&) = default;
    FlatTrace &operator=(FlatTrace &&) = default;
    FlatTrace(const FlatTrace &) = delete;
    FlatTrace &operator=(const FlatTrace &) = delete;

    // Backing storage — exactly one of {vectors, arena} is live.
    // Both backings start every arena on a cache-line boundary
    // (AlignedVec in memory, kArenaAlign in the file), so the replay
    // walks stream whole lines regardless of which one is attached.
    AlignedVec<std::uint8_t> opsStorage;
    AlignedVec<std::uint64_t> operandStorage;
    store::ArenaView arena;
};

} // namespace crw

#endif // CRW_TRACE_FLAT_TRACE_H_
