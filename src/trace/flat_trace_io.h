/**
 * @file
 * Durable on-disk form of FlatTrace (DESIGN.md §13): the predecoded
 * SoA arenas land in one arena file (segments "ops", "operands",
 * "spans") under bench_out/flat/, keyed by the source trace checksum
 * plus kFlatTraceFormatVersion. A cold run pays the TraceCursor walk
 * once and writes the file; every warm start afterwards attaches the
 * mapping in O(1) and replays straight out of it — no predecode, no
 * copy (the "spans" segment alone is decoded into the thread vector,
 * a few bytes per thread).
 *
 * loadFlatTrace re-hashes the payload (ArenaView::verifyPayload) and
 * bounds-checks the span table before handing pointers to the
 * check-free replay hot loop; any validation failure is a clean false
 * and the caller (bench/executor.cc cachedFlatTrace) rebuilds in
 * memory.
 */

#ifndef CRW_TRACE_FLAT_TRACE_IO_H_
#define CRW_TRACE_FLAT_TRACE_IO_H_

#include <cstdint>
#include <string>

#include "trace/flat_trace.h"

namespace crw {

/**
 * Bump when the flat-trace segment encoding changes (new segment,
 * different span packing, ...). Old files then fail the app-version
 * check at attach and are rebuilt, never misread. v2: arena segments
 * became cache-line aligned (store/arena.h kArenaAlign 16 -> 64) so
 * mapped replay arenas honour the same alignment contract as the
 * in-memory AlignedVec backing.
 */
inline constexpr std::uint32_t kFlatTraceFormatVersion = 2;

/**
 * Identity key stored in the arena superblock: names the source trace
 * and the encoding version, exactly the pair that makes the bytes
 * reusable.
 */
std::string flatTraceKey(std::uint64_t trace_checksum);

/**
 * Canonical file name (relative to the flat-trace directory) for a
 * trace's predecoded arenas. The checksum is parseable back out of
 * the name — `crw-bench cache --gc` uses that to drop files whose
 * trace is gone without attaching them.
 */
std::string flatTraceFileName(std::uint64_t trace_checksum);

/** Serialize @p flat to @p path (atomic temp+rename). */
bool saveFlatTrace(const FlatTrace &flat,
                   std::uint64_t trace_checksum,
                   const std::string &path,
                   std::string *error = nullptr);

/**
 * Attach @p path and validate it against @p trace_checksum. On
 * success @p out views the mapping (which it owns). False — with
 * @p out untouched — on any validation failure.
 */
bool loadFlatTrace(const std::string &path,
                   std::uint64_t trace_checksum, FlatTrace &out,
                   std::string *error = nullptr);

} // namespace crw

#endif // CRW_TRACE_FLAT_TRACE_IO_H_
