/**
 * @file
 * ReplayDriver: re-runs a captured EventTrace against a WindowEngine
 * without coroutines (DESIGN.md §8, §12).
 *
 * The driver is an exact re-implementation of the live execution's
 * state machine with the thread bodies replaced by their captured
 * per-thread scripts: the SchedCore ready queue (identical policy
 * code), the bounded-stream occupancy/waiter dynamics (identical to
 * rt/stream.cc rawPut/rawGet/close), and the engine event points
 * (identical call sites). Because the scripts are configuration-
 * independent (see event_trace.h) and every other transition rule is
 * shared, a replayed run produces *bit-identical* RunMetrics to a live
 * run at the same (scheme, windows, policy) point — the property the
 * replay-equivalence test enforces.
 *
 * Working-set scheduling works on replay because residency is asked of
 * *this* driver's engine at the moment of each wake, not read from the
 * trace; one trace therefore serves every scheme × windows × policy
 * combination.
 *
 * Two replay loops implement the same state machine (DESIGN.md §12):
 *
 *  - the *oracle* loop walks the encoded scripts through TraceCursor
 *    and drives the engine's virtual-dispatch members;
 *  - the *fast* loop walks a predecoded FlatTrace and drives a
 *    FastEngineView specialized on the concrete scheme class and on
 *    whether an observer is installed.
 *
 * Path selection (ReplayPath): Auto — the default — takes the fast
 * loop unless the engine was configured with checkInvariants (the
 * invariant walk only exists on the oracle path) or the environment
 * variable CRW_REPLAY_FAST is set to "0" (the determinism gate's
 * switch). Fast/Legacy force one loop for differential testing. Both
 * loops must produce bit-identical RunMetrics; the fast-replay test
 * sweeps that equivalence across every scheme and variant.
 */

#ifndef CRW_TRACE_REPLAY_DRIVER_H_
#define CRW_TRACE_REPLAY_DRIVER_H_

#include <memory>
#include <vector>

#include "common/small_vec.h"
#include "rt/sched_core.h"
#include "trace/behavior.h"
#include "trace/event_trace.h"
#include "trace/flat_trace.h"
#include "trace/replay_state.h"
#include "trace/run_metrics.h"
#include "win/engine.h"

namespace crw {

/** Which replay loop run() uses (see file comment). */
enum class ReplayPath : std::uint8_t {
    Auto,   ///< fast unless checkInvariants or CRW_REPLAY_FAST=0
    Fast,   ///< force the specialized loop (fatal w/ checkInvariants)
    Legacy, ///< force the virtual-dispatch oracle loop
    /**
     * Force the lockstep batch loop (trace/replay_batch.h) at width
     * one. Semantically identical to Fast — the differential tests
     * pin the batched event bodies against both other loops on a
     * single point, where lane divergence is impossible. Multi-lane
     * batching goes through BatchedReplayDriver instead.
     */
    Batched,
};

class ReplayDriver
{
  public:
    /**
     * @param trace The captured run (not owned; must outlive this).
     * @param engine_config Full engine configuration of the replay
     *        point (scheme, window count, cost model, PRW/allocation
     *        variants...).
     * @param policy Ready-queue policy to re-schedule with.
     * @param flat Optional predecoded image of @p trace (not owned;
     *        must outlive this). The bench executor builds one per
     *        trace and shares it across the sweep; when absent, a
     *        fast-path run() predecodes privately.
     */
    ReplayDriver(const EventTrace &trace,
                 const EngineConfig &engine_config, SchedPolicy policy,
                 const FlatTrace *flat = nullptr);

    ReplayDriver(const ReplayDriver &) = delete;
    ReplayDriver &operator=(const ReplayDriver &) = delete;

    /** Select the replay loop; call before run(). Default: Auto. */
    void setPath(ReplayPath path) { path_ = path; }

    /**
     * Replay the whole trace. Fatal on a stuck/mismatched trace, and
     * on a second call — a driver is one run, and rerunning would
     * silently accumulate into the first run's counters.
     */
    void run();

    /** True once run() completed through the specialized loop. */
    bool usedFastPath() const { return usedFast_; }

    /** True once run() completed through the lockstep batch loop. */
    bool usedBatchedPath() const { return usedBatched_; }

    /**
     * Metrics of the finished run. Fatal before run(): the engine and
     * tracker hold a half-initialized state that would serialize as a
     * plausible-looking all-zero record.
     */
    RunMetrics metrics() const;

    WindowEngine &engine() { return engine_; }
    const WindowEngine &engine() const { return engine_; }
    const SchedCore &core() const { return core_; }
    const BehaviorTracker &tracker() const { return tracker_; }

  private:
    /** Oracle loop: execute @p tid's script until it parks or exits. */
    void runThread(ThreadId tid);
    /** The oracle dispatch loop (virtual Scheme + TraceCursor). */
    void runLegacy();
    /** Instantiate and run the fast loop for the engine's scheme and
     *  the concrete scheduling-policy type (SchedPolicyBox::visit). */
    void runFast(const FlatTrace &flat);
    template <typename SchemeT, typename ObserverPolicy,
              typename PolicyT>
    void runFastLoop(const FlatTrace &flat, ObserverPolicy observer,
                     PolicyT &pol);
    /**
     * Wake every parked waiter on @p waiters. Most stream operations
     * find nobody parked (wakes happen on the full/empty edges only),
     * so the empty case must cost one load in the replay loops.
     */
    void
    wakeAll(SmallVec<ThreadId, 8> &waiters)
    {
        if (!waiters.empty())
            wakeAllSlow(waiters);
    }
    void wakeAllSlow(SmallVec<ThreadId, 8> &waiters);
    [[noreturn]] void fatalEventsAfterExit(ThreadId tid);
    [[noreturn]] void fatalEndedWithoutExit(ThreadId tid);

    const EventTrace &trace_;
    const FlatTrace *flat_;
    std::unique_ptr<FlatTrace> ownedFlat_;
    WindowEngine engine_;
    SchedCore core_;
    SchedPolicyBox policy_;
    BehaviorTracker tracker_;
    std::vector<RStream> streams_;
    std::vector<RThread> threads_;
    ReplayPath path_ = ReplayPath::Auto;
    bool ran_ = false;
    bool usedFast_ = false;
    bool usedBatched_ = false;
};

} // namespace crw

#endif // CRW_TRACE_REPLAY_DRIVER_H_
