/**
 * @file
 * ReplayDriver: re-runs a captured EventTrace against a WindowEngine
 * without coroutines (DESIGN.md §8).
 *
 * The driver is an exact re-implementation of the live execution's
 * state machine with the thread bodies replaced by their captured
 * per-thread scripts: the SchedCore ready queue (identical policy
 * code), the bounded-stream occupancy/waiter dynamics (identical to
 * rt/stream.cc rawPut/rawGet/close), and the engine event points
 * (identical call sites). Because the scripts are configuration-
 * independent (see event_trace.h) and every other transition rule is
 * shared, a replayed run produces *bit-identical* RunMetrics to a live
 * run at the same (scheme, windows, policy) point — the property the
 * replay-equivalence test enforces.
 *
 * Working-set scheduling works on replay because residency is asked of
 * *this* driver's engine at the moment of each wake, not read from the
 * trace; one trace therefore serves every scheme × windows × policy
 * combination.
 */

#ifndef CRW_TRACE_REPLAY_DRIVER_H_
#define CRW_TRACE_REPLAY_DRIVER_H_

#include <vector>

#include "rt/sched_core.h"
#include "trace/behavior.h"
#include "trace/event_trace.h"
#include "trace/run_metrics.h"
#include "win/engine.h"

namespace crw {

class ReplayDriver
{
  public:
    /**
     * @param trace The captured run (not owned; must outlive this).
     * @param engine_config Full engine configuration of the replay
     *        point (scheme, window count, cost model, PRW/allocation
     *        variants...).
     * @param policy Ready-queue policy to re-schedule with.
     */
    ReplayDriver(const EventTrace &trace,
                 const EngineConfig &engine_config, SchedPolicy policy);

    ReplayDriver(const ReplayDriver &) = delete;
    ReplayDriver &operator=(const ReplayDriver &) = delete;

    /** Replay the whole trace. Fatal on a stuck/mismatched trace. */
    void run();

    /** Metrics of the finished run (call after run()). */
    RunMetrics metrics() const;

    WindowEngine &engine() { return engine_; }
    const WindowEngine &engine() const { return engine_; }
    const SchedCore &core() const { return core_; }
    const BehaviorTracker &tracker() const { return tracker_; }

  private:
    /** Replay image of one bounded stream (occupancy + waiters). */
    struct RStream
    {
        std::uint32_t capacity = 0;
        std::uint32_t count = 0;
        int openWriters = 0;
        std::vector<ThreadId> readWaiters;
        std::vector<ThreadId> writeWaiters;
    };

    enum class RState : std::uint8_t {
        Ready,
        Running,
        Blocked,
        Finished
    };

    struct RThread
    {
        TraceCursor cursor;
        RState state = RState::Ready;
    };

    /** Execute @p tid's script until it parks or exits. */
    void runThread(ThreadId tid);
    void wakeAll(std::vector<ThreadId> &waiters);

    const EventTrace &trace_;
    WindowEngine engine_;
    SchedCore core_;
    BehaviorTracker tracker_;
    std::vector<RStream> streams_;
    std::vector<RThread> threads_;
    bool ran_ = false;
};

} // namespace crw

#endif // CRW_TRACE_REPLAY_DRIVER_H_
