/**
 * @file
 * EventTrace: the capture-once / replay-many representation of one
 * application run (DESIGN.md §8).
 *
 * The paper's own emulator split (§4.1: "usual instructions are
 * executed at real speed, but instructions which concern windows are
 * trapped and emulated") implies the window-event stream of the
 * application is independent of the window configuration. We push that
 * one step further: the stream is captured *per thread* as the exact
 * sequence of engine-relevant actions — procedure entry/exit
 * (save/restore), compute charges, and bounded-stream operations —
 * and replayed against any (scheme, window count, policy) point.
 *
 * Why per-thread scripts instead of one global interleaving: the
 * interleaving (and therefore every block, wake and context switch) is
 * a *function* of the window configuration and the scheduling policy;
 * baking it in would pin the trace to the capture configuration. The
 * per-thread action sequences, by contrast, are configuration-
 * independent: threads communicate only through FIFO streams (a Kahn
 * network), so the data — and hence the actions — each thread produces
 * do not depend on the schedule. Blocks and wakes are re-derived at
 * replay by simulating the bounded buffers (replay_driver.h).
 *
 * Event kinds and their replay semantics:
 *
 *   Save     the thread executed a `save` (procedure entry)
 *   Restore  the thread executed a `restore` (procedure return)
 *   Charge   n cycles of ordinary computation
 *   Put      one byte enqueued to stream s (blocks while full)
 *   Get      one byte dequeued from stream s (blocks while empty;
 *            EOF — no byte, no block — once the stream is closed)
 *   Close    one writer of stream s is done
 *   Exit     the thread's body returned
 *
 * Encoding: one tag byte per event — kind in the high nibble, a small
 * operand (charge amount or stream id) in the low nibble, with a
 * varint spill for large operands. Adjacent charges are coalesced at
 * record time (the engine's clock and counters cannot distinguish
 * them). A full behavior trace is a few MB.
 */

#ifndef CRW_TRACE_EVENT_TRACE_H_
#define CRW_TRACE_EVENT_TRACE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.h"
#include "rt/trace_sink.h"

namespace crw {

/** Event kinds; values are the tag byte's high nibble. */
enum class TraceOp : std::uint8_t {
    Save = 0,
    Restore = 1,
    Charge = 2,
    Put = 3,
    Get = 4,
    Close = 5,
    Exit = 6,
};

/** One stream of the captured application. */
struct TraceStreamInfo
{
    std::string name;
    std::uint32_t capacity = 0;
    std::uint32_t writers = 0;

    bool
    operator==(const TraceStreamInfo &o) const
    {
        return name == o.name && capacity == o.capacity &&
               writers == o.writers;
    }
};

/** One thread: its name, static scheduling priority (0 = default;
 *  consulted only by SchedPolicy::Priority) and encoded event script,
 *  in spawn order. */
struct TraceThreadInfo
{
    std::string name;
    std::uint8_t priority = 0;
    std::vector<std::uint8_t> code;

    bool
    operator==(const TraceThreadInfo &o) const
    {
        return name == o.name && priority == o.priority &&
               code == o.code;
    }
};

/** A captured run, plus the identity fields forming its cache key. */
struct EventTrace
{
    /** Behavior key, e.g. "HC-fine-m1-n1" (see DESIGN.md §8). */
    std::string key;
    std::uint64_t seed = 0;
    std::uint64_t corpusBytes = 0;

    /** Schedule-independent outputs carried for RunMetrics. */
    std::uint64_t misspelled = 0;
    std::uint64_t wordsFromDelatex = 0;

    std::vector<TraceStreamInfo> streams;
    std::vector<TraceThreadInfo> threads;

    /** Total decoded events across all threads (for reporting). */
    std::uint64_t eventCount() const;

    bool
    operator==(const EventTrace &o) const
    {
        return key == o.key && seed == o.seed &&
               corpusBytes == o.corpusBytes &&
               misspelled == o.misspelled &&
               wordsFromDelatex == o.wordsFromDelatex &&
               streams == o.streams && threads == o.threads;
    }
};

/**
 * Decoder over one thread's event script. decodeNext() is branch-light
 * and allocation-free; the replay driver calls it tens of millions of
 * times per sweep.
 */
class TraceCursor
{
  public:
    explicit TraceCursor(const std::vector<std::uint8_t> &code)
        : pc_(code.data()),
          end_(code.data() + code.size())
    {}

    bool atEnd() const { return pc_ == end_; }

    /**
     * Peek the next event without consuming it. @p operand receives
     * the charge amount (Charge) or stream id (Put/Get/Close).
     */
    TraceOp peek(std::uint64_t &operand) const;

    /** Consume the event previously peeked. */
    void advance();

  private:
    const std::uint8_t *pc_;
    const std::uint8_t *end_;
    mutable const std::uint8_t *next_ = nullptr; // set by peek()
};

/**
 * The concrete TraceSink: records a live run into an EventTrace.
 * Install on the Runtime before constructing the application; call
 * take() after the run to obtain the trace.
 */
class TraceRecorder : public TraceSink
{
  public:
    TraceRecorder(std::string key, std::uint64_t seed,
                  std::uint64_t corpus_bytes);

    void onThreadSpawn(ThreadId tid, const std::string &name,
                       std::uint8_t priority) override;
    int onStreamCreate(const std::string &name, std::size_t capacity,
                       int num_writers) override;
    void recordSave(ThreadId tid) override;
    void recordRestore(ThreadId tid) override;
    void recordCharge(ThreadId tid, Cycles cycles) override;
    void recordPut(ThreadId tid, int stream_id) override;
    void recordGet(ThreadId tid, int stream_id) override;
    void recordClose(ThreadId tid, int stream_id) override;
    void recordExit(ThreadId tid) override;

    /** Finalize and move the trace out (the recorder is spent). */
    EventTrace take(std::uint64_t misspelled,
                    std::uint64_t words_from_delatex);

  private:
    void emit(ThreadId tid, TraceOp op, std::uint64_t operand);
    void flushCharge(ThreadId tid);
    std::vector<std::uint8_t> &code(ThreadId tid);

    EventTrace trace_;
    std::vector<std::uint64_t> pendingCharge_;
};

/**
 * Binary serialization with a versioned header and a payload checksum
 * so stale or corrupted cache files are rejected, never replayed.
 * Layout: magic "CRWTRACE", u32 version, payload, u64 FNV-1a checksum.
 *
 * Version history:
 *   1  original format
 *   2  TraceThreadInfo gained the per-thread priority byte (between
 *      the name and the code blob). v1 files are rejected and
 *      re-captured deterministically — re-capture emits identical
 *      scripts, so downstream results are unchanged.
 */
inline constexpr std::uint32_t kTraceFormatVersion = 2;

/**
 * FNV-1a of the trace's serialized payload — exactly the bytes
 * saveTraceFile() checksums, so an in-memory trace and its cache file
 * agree on identity. This is the trace-identity component of the
 * bench result-cache key (bench/result_cache.h): any change to the
 * captured behavior invalidates every point result derived from it.
 */
std::uint64_t traceChecksum(const EventTrace &trace);

/** Write @p trace to @p path (via a temp file + rename). */
bool saveTraceFile(const EventTrace &trace, const std::string &path,
                   std::string *error = nullptr);

/**
 * Structural validation of one thread's encoded event script: every
 * tag must carry a known op, every spilled varint must terminate
 * inside the blob without overflowing 64 bits, and every stream
 * operand must name one of the trace's @p num_streams streams.
 *
 * TraceCursor::peek() assumes (crw_assert) a well-formed script — it
 * runs tens of millions of times per sweep and must stay check-free —
 * so everything that enters a replay MUST pass through this gate
 * first. loadTraceFile() applies it to every thread; a trace built by
 * TraceRecorder is well-formed by construction.
 */
bool validateTraceCode(const std::vector<std::uint8_t> &code,
                       std::size_t num_streams,
                       std::string *error = nullptr);

/**
 * Read a trace back. Returns false (with a reason in @p error) on a
 * bad magic, unknown version, truncation, checksum mismatch, or a
 * thread event script that fails validateTraceCode().
 */
bool loadTraceFile(const std::string &path, EventTrace &out,
                   std::string *error = nullptr);

} // namespace crw

#endif // CRW_TRACE_EVENT_TRACE_H_
