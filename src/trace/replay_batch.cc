#include "trace/replay_batch.h"

#include <string>
#include <type_traits>

#include "common/logging.h"
#include "win/engine_batch.h"

namespace crw {
namespace {

std::string
batchContext(const EventTrace &trace, const WindowEngine &engine,
             SchedPolicy policy, std::size_t lanes)
{
    return "behavior \"" + trace.key + "\", " +
           schemeName(engine.scheme()) + "/" + policyName(policy) +
           ", batch of " + std::to_string(lanes);
}

/**
 * The lockstep dispatch loop: the exact state machine of
 * ReplayDriver::runFastLoop (replay_driver.cc) — same goto-chained
 * measured-successor decode, same stream/waiter/scheduler statements
 * — with the single-engine FastEngineView replaced by the
 * leader/follower BatchedEngineView and the one engine-state read in
 * the control path (residency at wake, consulted by the working-set
 * policy family) answered by the leader, recorded, and re-verified on
 * every follower lane when the drained loop hands off to
 * view.finish(). Every other policy input (static priorities, the
 * round-robin quantum's charge operands) is lane-invariant by the
 * policy determinism contract (rt/sched_core.h), so those policies
 * batch without checkpoints.
 */
// flatten: same rationale as runFastLoop — the window-file and scheme
// primitives must inline into the per-lane event bodies, where they
// run hundreds of millions of times per sweep.
template <typename SchemeT, typename PolicyT>
__attribute__((flatten)) bool
lockstepLoop(const EventTrace &trace, const FlatTrace &flat,
             SchedCore &core, PolicyT &pol,
             std::vector<RStream> &streams,
             std::vector<RThread> &threads,
             WindowEngine *const *engines, BehaviorTracker &tracker,
             std::size_t lanes, SimdTier *simd_path)
{
    BatchedEngineView<SchemeT> view(engines, lanes);
    view.reserveOps(flat.eventCount());
    const std::uint8_t *const ops = flat.ops;
    const std::uint64_t *const operands = flat.operands;

    const auto fatalEventsAfterExit = [&](ThreadId tid) {
        crw_fatal << "replay: events after Exit in thread " << tid
                  << " ("
                  << trace.threads[static_cast<std::size_t>(tid)].name
                  << ") — "
                  << batchContext(trace, *engines[0], core.policy(),
                                  lanes);
    };
    const auto fatalEndedWithoutExit = [&](ThreadId tid) {
        crw_fatal << "replay: script of thread " << tid << " ("
                  << trace.threads[static_cast<std::size_t>(tid)].name
                  << ") ended without Exit — "
                  << batchContext(trace, *engines[0], core.policy(),
                                  lanes);
    };

    // Mirror of ReplayDriver::wakeAllSlow, plus the batch contract:
    // when the policy consults residency (WS, WSA) the placement
    // consumes the *leader's* residency of the woken thread, and the
    // view records a checkpoint every follower lane re-verifies during
    // its deferred replay. A follower that disagrees would have forked
    // the schedule at that wake, so view.finish() reports the batch as
    // diverged. Residency-blind policies skip the checkpoint entirely.
    const auto wakeAllSlow = [&](SmallVec<ThreadId, 8> &waiters) {
        for (const ThreadId tid : waiters) {
            RThread &t = threads[static_cast<std::size_t>(tid)];
            if (t.state != RState::Blocked)
                continue;
            t.state = RState::Ready;
            if constexpr (PolicyT::kUsesResidency) {
                const bool resident = view.resident(tid);
                view.recordWakeCheck(tid, resident);
                pol.wake(core, tid, resident);
            } else {
                pol.wake(core, tid, false);
            }
        }
        waiters.clear();
    };
    const auto wakeAll = [&](SmallVec<ThreadId, 8> &waiters) {
        if (!waiters.empty())
            wakeAllSlow(waiters);
    };

    while (!core.idle()) {
        const ThreadId tid = core.dispatchNext();
        if constexpr (PolicyT::kHasQuantum)
            pol.resetQuantum();
        RThread &t = threads[static_cast<std::size_t>(tid)];
        crw_assert(t.state == RState::Ready);
        t.state = RState::Running;
        if (view.current() != tid) {
            const ThreadId from = view.current();
            view.contextSwitch(tid);
            tracker.onSwitch(from, tid, view.depth(tid),
                             view.switchBegin(0), view.now(0));
        }

        std::uint32_t pc = t.pc;
        const std::uint32_t end =
            flat.threads[static_cast<std::size_t>(tid)].end;
        bool running = true;
        while (running) {
            if (pc == end)
                fatalEndedWithoutExit(tid);
            switch (static_cast<TraceOp>(ops[pc])) {
              case TraceOp::Save:
              save_op:
                view.save();
                tracker.onSave(tid, view.depth(tid));
                ++pc;
                if (pc != end &&
                    static_cast<TraceOp>(ops[pc]) == TraceOp::Charge)
                    goto charge_op;
                break;
              case TraceOp::Restore:
              restore_op:
                view.restore();
                tracker.onRestore(tid, view.depth(tid));
                ++pc;
                if (pc != end &&
                    static_cast<TraceOp>(ops[pc]) == TraceOp::Save)
                    goto save_op;
                break;
              case TraceOp::Charge:
              charge_op:
                view.charge(static_cast<Cycles>(operands[pc]));
                if constexpr (PolicyT::kHasQuantum) {
                    // Preemption point: the charge has executed, then
                    // the thread yields to the tail of the queue —
                    // same statement order as the per-point loops. The
                    // operand is a shared trace value, so every lane
                    // observes the identical quantum schedule.
                    if (pol.chargeExpires(
                            static_cast<Cycles>(operands[pc]))) {
                        ++pc;
                        pol.onQuantumExpiry(core, tid);
                        t.state = RState::Ready;
                        running = false;
                        break;
                    }
                }
                ++pc;
                if (pc != end) {
                    const TraceOp next = static_cast<TraceOp>(ops[pc]);
                    if (next == TraceOp::Get)
                        goto get_op;
                    if (next == TraceOp::Put)
                        goto put_op;
                    if (next == TraceOp::Save)
                        goto save_op;
                }
                break;
              case TraceOp::Put:
              put_op: {
                RStream &s = streams[operands[pc]];
                if (s.count == s.capacity) {
                    wakeAll(s.readWaiters);
                    s.writeWaiters.push_back(tid);
                    t.state = RState::Blocked;
                    running = false;
                    break;
                }
                ++s.count;
                wakeAll(s.readWaiters);
                ++pc;
                if (pc != end) {
                    const TraceOp next = static_cast<TraceOp>(ops[pc]);
                    if (next == TraceOp::Restore)
                        goto restore_op;
                    if (next == TraceOp::Put)
                        goto put_op;
                }
                break;
              }
              case TraceOp::Get:
              get_op: {
                RStream &s = streams[operands[pc]];
                if (s.count == 0) {
                    if (s.openWriters == 0) {
                        ++pc;
                        break;
                    }
                    wakeAll(s.writeWaiters);
                    s.readWaiters.push_back(tid);
                    t.state = RState::Blocked;
                    running = false;
                    break;
                }
                --s.count;
                wakeAll(s.writeWaiters);
                ++pc;
                if (pc != end &&
                    static_cast<TraceOp>(ops[pc]) == TraceOp::Restore)
                    goto restore_op;
                break;
              }
              case TraceOp::Close: {
                RStream &s = streams[operands[pc]];
                crw_assert(s.openWriters > 0);
                if (--s.openWriters == 0)
                    wakeAll(s.readWaiters);
                ++pc;
                break;
              }
              case TraceOp::Exit:
                ++pc;
                if (pc != end)
                    fatalEventsAfterExit(tid);
                view.threadExit();
                tracker.onExit(tid);
                t.state = RState::Finished;
                running = false;
                break;
            }
        }
        t.pc = pc;
    }
    // The follower lanes replay the recorded op stream here; a
    // working-set divergence surfaces as false.
    const bool ok = view.finish();
    if (simd_path)
        *simd_path = view.simdPathTaken();
    return ok;
}

} // namespace

namespace detail_replay {

bool
runLockstepLoop(const EventTrace &trace, const FlatTrace &flat,
                SchedCore &core, SchedPolicyBox &policy,
                std::vector<RStream> &streams,
                std::vector<RThread> &threads,
                WindowEngine *const *engines, BehaviorTracker &tracker,
                std::size_t lanes, SimdTier *simd_path)
{
    // One instantiation per (scheme, policy) pair, mirroring
    // ReplayDriver::runFast: the policy's placement verbs and quantum
    // branches compile to straight-line code inside the flattened
    // loop.
    const auto dispatch = [&](auto scheme_tag) {
        using SchemeT = typename decltype(scheme_tag)::type;
        return policy.visit([&](auto &pol) {
            return lockstepLoop<SchemeT>(trace, flat, core, pol,
                                         streams, threads, engines,
                                         tracker, lanes, simd_path);
        });
    };
    switch (engines[0]->scheme()) {
      case SchemeKind::NS:
        return dispatch(std::type_identity<detail::NsScheme>{});
      case SchemeKind::SNP:
        return dispatch(std::type_identity<detail::SnpScheme>{});
      case SchemeKind::SP:
        return dispatch(std::type_identity<detail::SpScheme>{});
      case SchemeKind::Infinite:
        return dispatch(std::type_identity<detail::InfiniteScheme>{});
    }
    crw_unreachable("bad scheme kind");
}

} // namespace detail_replay

BatchedReplayDriver::BatchedReplayDriver(
    const EventTrace &trace, const std::vector<EngineConfig> &configs,
    SchedPolicy policy, const FlatTrace *flat)
    : trace_(trace),
      flat_(flat),
      tracker_(64),
      core_(policy),
      policy_(policy)
{
    if (configs.empty())
        crw_fatal << "BatchedReplayDriver: empty config batch for "
                     "behavior \""
                  << trace.key << "\"";
    engines_.reserve(configs.size());
    for (const EngineConfig &config : configs) {
        if (config.scheme != configs.front().scheme)
            crw_fatal << "BatchedReplayDriver: mixed schemes in one "
                         "batch ("
                      << schemeName(configs.front().scheme) << " vs "
                      << schemeName(config.scheme)
                      << ") — one lockstep instantiation drives one "
                         "concrete scheme class";
        if (config.checkInvariants)
            crw_fatal << "BatchedReplayDriver: checkInvariants is an "
                         "oracle-path debugging aid; batched replay "
                         "refuses it (behavior \""
                      << trace.key << "\", "
                      << schemeName(config.scheme) << "/"
                      << policyName(policy) << ")";
        engines_.push_back(std::make_unique<WindowEngine>(config));
    }

    streams_.resize(trace.streams.size());
    for (std::size_t i = 0; i < trace.streams.size(); ++i) {
        streams_[i].capacity = trace.streams[i].capacity;
        streams_[i].openWriters =
            static_cast<int>(trace.streams[i].writers);
    }
    threads_.reserve(trace.threads.size());
    // Spawn order: dense tids, placement by the policy (priorities
    // come from the trace) — exactly as Scheduler::spawn.
    for (std::size_t i = 0; i < trace.threads.size(); ++i) {
        const ThreadId tid = static_cast<ThreadId>(i);
        for (auto &engine : engines_)
            engine->addThread(tid);
        threads_.push_back(RThread{TraceCursor(trace.threads[i].code),
                                   0, RState::Ready});
        policy_.noteSpawn(tid, trace.threads[i].priority);
        policy_.onSpawn(core_, tid);
    }
    crw_assert(!flat_ || flat_->threads.size() == threads_.size());
}

bool
BatchedReplayDriver::run()
{
    if (ran_)
        crw_fatal << "BatchedReplayDriver::run() called twice ("
                  << batchContext(trace_, *engines_[0], core_.policy(),
                                  lanes())
                  << ")";
    ran_ = true;

    if (!flat_) {
        ownedFlat_ =
            std::make_unique<FlatTrace>(FlatTrace::build(trace_));
        flat_ = ownedFlat_.get();
    }
    for (std::size_t i = 0; i < threads_.size(); ++i)
        threads_[i].pc = flat_->threads[i].begin;

    // The raw lane array the loop iterates (unique_ptr unwrapped off
    // the hot path).
    std::vector<WindowEngine *> engines;
    engines.reserve(lanes());
    for (std::size_t l = 0; l < lanes(); ++l)
        engines.push_back(engines_[l].get());

    ok_ = detail_replay::runLockstepLoop(trace_, *flat_, core_,
                                         policy_, streams_, threads_,
                                         engines.data(), tracker_,
                                         lanes(), &simdPath_);
    if (!ok_)
        return false;

    for (std::size_t i = 0; i < threads_.size(); ++i) {
        if (threads_[i].state != RState::Finished)
            crw_fatal << "replay deadlock: thread " << i << " ("
                      << trace_.threads[i].name
                      << ") never finished — trace/config mismatch, "
                      << batchContext(trace_, *engines_[0],
                                      core_.policy(), lanes());
    }
    // One finish at lane 0's clock: the sole clock-dependent tracker
    // state is the granularity distribution, which no RunMetrics
    // field reads (see replay_batch.h).
    tracker_.finish(engines_[0]->now());
    return true;
}

RunMetrics
BatchedReplayDriver::metrics(std::size_t lane) const
{
    if (!ran_ || !ok_)
        crw_fatal << "BatchedReplayDriver::metrics() before a "
                     "successful run() — "
                  << (ran_ ? "the batch diverged and its lanes are "
                             "garbage"
                           : "the engines and trackers are "
                             "unpopulated")
                  << " ("
                  << batchContext(trace_, *engines_[0], core_.policy(),
                                  lanes())
                  << ")";
    return collectRunMetrics(*engines_[lane], tracker_,
                             core_.slackness(), core_.policy(),
                             static_cast<int>(threads_.size()),
                             trace_.misspelled);
}

} // namespace crw
