#include "trace/replay_driver.h"

#include <cstdlib>
#include <string>
#include <type_traits>

#include "common/logging.h"
#include "trace/replay_batch.h"
#include "win/engine_fast.h"

namespace crw {
namespace {

/**
 * Replay coordinate for fatal diagnostics: which behavior's trace was
 * being replayed, and under which (scheme, windows, policy). A stuck
 * or mismatched replay is almost always one bad point in a large
 * sweep, so the bare thread id alone is undebuggable.
 */
std::string
replayContext(const EventTrace &trace, const WindowEngine &engine,
              SchedPolicy policy)
{
    return "behavior \"" + trace.key + "\", " +
           schemeName(engine.scheme()) + "/w" +
           std::to_string(engine.numWindows()) + "/" +
           policyName(policy);
}

/** CRW_REPLAY_FAST=0 pins Auto-path drivers to the oracle loop. */
bool
fastEnabledByEnv()
{
    const char *v = std::getenv("CRW_REPLAY_FAST");
    return !(v && v[0] == '0' && v[1] == '\0');
}

} // namespace

ReplayDriver::ReplayDriver(const EventTrace &trace,
                           const EngineConfig &engine_config,
                           SchedPolicy policy, const FlatTrace *flat)
    : trace_(trace),
      flat_(flat),
      engine_(engine_config),
      core_(policy),
      policy_(policy),
      tracker_(64)
{
    // The tracker is driven directly from the dispatch loops below (a
    // devirtualized call on the final class) rather than through
    // WindowEngine's observer hook; the callbacks and arguments are
    // identical to what the engine would deliver.
    streams_.resize(trace.streams.size());
    for (std::size_t i = 0; i < trace.streams.size(); ++i) {
        streams_[i].capacity = trace.streams[i].capacity;
        streams_[i].openWriters =
            static_cast<int>(trace.streams[i].writers);
    }
    threads_.reserve(trace.threads.size());
    // Spawn order: dense tids, placement by the policy (priorities
    // come from the trace) — exactly as Scheduler::spawn.
    for (std::size_t i = 0; i < trace.threads.size(); ++i) {
        const ThreadId tid = static_cast<ThreadId>(i);
        engine_.addThread(tid);
        threads_.push_back(
            RThread{TraceCursor(trace.threads[i].code), 0,
                    RState::Ready});
        policy_.noteSpawn(tid, trace.threads[i].priority);
        policy_.onSpawn(core_, tid);
    }
    crw_assert(!flat_ || flat_->threads.size() == threads_.size());
}

void
ReplayDriver::wakeAllSlow(SmallVec<ThreadId, 8> &waiters)
{
    // Mirror of Stream::wakeAll + Scheduler::wake: wake-all with a
    // state re-check, queue placement decided by the policy against
    // *this* engine's residency at wake time.
    for (const ThreadId tid : waiters) {
        RThread &t = threads_[static_cast<std::size_t>(tid)];
        if (t.state != RState::Blocked)
            continue;
        t.state = RState::Ready;
        policy_.wake(core_, tid, engine_.isResident(tid));
    }
    waiters.clear();
}

void
ReplayDriver::fatalEventsAfterExit(ThreadId tid)
{
    crw_fatal << "replay: events after Exit in thread " << tid << " ("
              << trace_.threads[static_cast<std::size_t>(tid)].name
              << ") — "
              << replayContext(trace_, engine_, core_.policy());
}

void
ReplayDriver::fatalEndedWithoutExit(ThreadId tid)
{
    crw_fatal << "replay: script of thread " << tid << " ("
              << trace_.threads[static_cast<std::size_t>(tid)].name
              << ") ended without Exit — "
              << replayContext(trace_, engine_, core_.policy());
}

void
ReplayDriver::runThread(ThreadId tid)
{
    RThread &t = threads_[static_cast<std::size_t>(tid)];
    TraceCursor &cur = t.cursor;
    std::uint64_t operand;

    while (!cur.atEnd()) {
        const TraceOp op = cur.peek(operand);
        switch (op) {
          case TraceOp::Save:
            engine_.save();
            tracker_.onSave(tid, engine_.depthOf(tid));
            cur.advance();
            break;
          case TraceOp::Restore:
            engine_.restore();
            tracker_.onRestore(tid, engine_.depthOf(tid));
            cur.advance();
            break;
          case TraceOp::Charge:
            engine_.charge(static_cast<Cycles>(operand));
            cur.advance();
            // Round-robin preemption point: the charge has executed
            // (clock advanced, cursor moved), then the thread yields
            // back to the tail of the queue. chargeExpires is
            // identically false for quantum-less policies.
            if (policy_.chargeExpires(static_cast<Cycles>(operand))) {
                policy_.onQuantumExpiry(core_, tid);
                t.state = RState::Ready;
                return;
            }
            break;
          case TraceOp::Put: {
            RStream &s = streams_[operand];
            if (s.count == s.capacity) {
                // Stream::rawPut's blocking loop: notify readers,
                // park; re-entered (cursor unmoved) when re-run.
                wakeAll(s.readWaiters);
                s.writeWaiters.push_back(tid);
                t.state = RState::Blocked;
                return;
            }
            ++s.count;
            wakeAll(s.readWaiters);
            cur.advance();
            break;
          }
          case TraceOp::Get: {
            RStream &s = streams_[operand];
            if (s.count == 0) {
                if (s.openWriters == 0) {
                    // EOF: rawGet returns without byte or block.
                    cur.advance();
                    break;
                }
                wakeAll(s.writeWaiters);
                s.readWaiters.push_back(tid);
                t.state = RState::Blocked;
                return;
            }
            --s.count;
            wakeAll(s.writeWaiters);
            cur.advance();
            break;
          }
          case TraceOp::Close: {
            RStream &s = streams_[operand];
            crw_assert(s.openWriters > 0);
            if (--s.openWriters == 0)
                wakeAll(s.readWaiters);
            cur.advance();
            break;
          }
          case TraceOp::Exit:
            cur.advance();
            if (!cur.atEnd())
                fatalEventsAfterExit(tid);
            engine_.threadExit();
            tracker_.onExit(tid);
            t.state = RState::Finished;
            return;
        }
    }
    fatalEndedWithoutExit(tid);
}

void
ReplayDriver::runLegacy()
{
    while (!core_.idle()) {
        const ThreadId tid = core_.dispatchNext();
        policy_.resetQuantum();
        RThread &t = threads_[static_cast<std::size_t>(tid)];
        crw_assert(t.state == RState::Ready);
        t.state = RState::Running;
        if (engine_.current() != tid) {
            const ThreadId from = engine_.current();
            const Cycles begin = engine_.now();
            engine_.contextSwitch(tid);
            tracker_.onSwitch(from, tid, engine_.depthOf(tid), begin,
                              engine_.now());
        }
        runThread(tid);
    }
}

/**
 * The specialized dispatch loop: same state machine as runLegacy() +
 * runThread(), with the script walk flattened to an index into the
 * predecoded arena and every engine event inlined through the
 * FastEngineView. The stream/waiter/scheduler transitions are the
 * exact statements of the oracle loop — only the event decode and the
 * engine dispatch differ.
 */
// flatten: the instantiations are each large enough that gcc's
// unit-growth budget otherwise gives up on inlining the window-file
// primitives (thread(), claimAsTop(), ...) precisely where they fire
// hundreds of millions of times; forcing the full event path inline
// here is the point of the specialized loop.
template <typename SchemeT, typename ObserverPolicy, typename PolicyT>
__attribute__((flatten)) void
ReplayDriver::runFastLoop(const FlatTrace &flat, ObserverPolicy observer,
                          PolicyT &pol)
{
    FastEngineView<SchemeT, ObserverPolicy> fast(engine_, observer);
    const std::uint8_t *const ops = flat.ops;
    const std::uint64_t *const operands = flat.operands;

    // Local mirrors of wakeAll/wakeAllSlow, bound to the concrete
    // policy type so queue placement compiles to straight-line code
    // (the member versions dispatch through the runtime box).
    const auto wakeAllSlow = [&](SmallVec<ThreadId, 8> &waiters) {
        for (const ThreadId wtid : waiters) {
            RThread &w = threads_[static_cast<std::size_t>(wtid)];
            if (w.state != RState::Blocked)
                continue;
            w.state = RState::Ready;
            pol.wake(core_, wtid, engine_.isResident(wtid));
        }
        waiters.clear();
    };
    const auto wakeAll = [&](SmallVec<ThreadId, 8> &waiters) {
        if (!waiters.empty())
            wakeAllSlow(waiters);
    };

    while (!core_.idle()) {
        const ThreadId tid = core_.dispatchNext();
        if constexpr (PolicyT::kHasQuantum)
            pol.resetQuantum();
        RThread &t = threads_[static_cast<std::size_t>(tid)];
        crw_assert(t.state == RState::Ready);
        t.state = RState::Running;
        if (fast.current() != tid) {
            const ThreadId from = fast.current();
            const Cycles begin = fast.now();
            fast.contextSwitch(tid);
            tracker_.onSwitch(from, tid, engine_.depthOf(tid), begin,
                              fast.now());
        }

        std::uint32_t pc = t.pc;
        const std::uint32_t end =
            flat.threads[static_cast<std::size_t>(tid)].end;
        bool running = true;
        while (running) {
            if (pc == end)
                fatalEndedWithoutExit(tid);
            // After each handler, the dominant successor op (measured
            // on the spell traces: every Save is followed by a Charge,
            // most Restores by a Save, most Gets by a Restore) is
            // peeked and handled inline — a predictable conditional
            // branch instead of a round trip through the switch's
            // indirect dispatch. The executed event sequence is
            // exactly the oracle's.
            switch (static_cast<TraceOp>(ops[pc])) {
              case TraceOp::Save:
              save_op:
                fast.save();
                tracker_.onSave(tid, engine_.depthOf(tid));
                ++pc;
                if (pc != end &&
                    static_cast<TraceOp>(ops[pc]) == TraceOp::Charge)
                    goto charge_op;
                break;
              case TraceOp::Restore:
              restore_op:
                fast.restore();
                tracker_.onRestore(tid, engine_.depthOf(tid));
                ++pc;
                if (pc != end &&
                    static_cast<TraceOp>(ops[pc]) == TraceOp::Save)
                    goto save_op;
                break;
              case TraceOp::Charge:
              charge_op:
                fast.charge(static_cast<Cycles>(operands[pc]));
                if constexpr (PolicyT::kHasQuantum) {
                    // Preemption point: the charge has executed, then
                    // the thread yields to the tail of the queue —
                    // same statement order as the oracle loop.
                    if (pol.chargeExpires(
                            static_cast<Cycles>(operands[pc]))) {
                        ++pc;
                        pol.onQuantumExpiry(core_, tid);
                        t.state = RState::Ready;
                        running = false;
                        break;
                    }
                }
                ++pc;
                if (pc != end) {
                    const TraceOp next = static_cast<TraceOp>(ops[pc]);
                    if (next == TraceOp::Get)
                        goto get_op;
                    if (next == TraceOp::Put)
                        goto put_op;
                    if (next == TraceOp::Save)
                        goto save_op;
                }
                break;
              case TraceOp::Put:
              put_op: {
                RStream &s = streams_[operands[pc]];
                if (s.count == s.capacity) {
                    wakeAll(s.readWaiters);
                    s.writeWaiters.push_back(tid);
                    t.state = RState::Blocked;
                    running = false;
                    break;
                }
                ++s.count;
                wakeAll(s.readWaiters);
                ++pc;
                if (pc != end) {
                    const TraceOp next = static_cast<TraceOp>(ops[pc]);
                    if (next == TraceOp::Restore)
                        goto restore_op;
                    if (next == TraceOp::Put)
                        goto put_op;
                }
                break;
              }
              case TraceOp::Get:
              get_op: {
                RStream &s = streams_[operands[pc]];
                if (s.count == 0) {
                    if (s.openWriters == 0) {
                        ++pc;
                        break;
                    }
                    wakeAll(s.writeWaiters);
                    s.readWaiters.push_back(tid);
                    t.state = RState::Blocked;
                    running = false;
                    break;
                }
                --s.count;
                wakeAll(s.writeWaiters);
                ++pc;
                if (pc != end &&
                    static_cast<TraceOp>(ops[pc]) == TraceOp::Restore)
                    goto restore_op;
                break;
              }
              case TraceOp::Close: {
                RStream &s = streams_[operands[pc]];
                crw_assert(s.openWriters > 0);
                if (--s.openWriters == 0)
                    wakeAll(s.readWaiters);
                ++pc;
                break;
              }
              case TraceOp::Exit:
                ++pc;
                if (pc != end)
                    fatalEventsAfterExit(tid);
                fast.threadExit();
                tracker_.onExit(tid);
                t.state = RState::Finished;
                running = false;
                break;
            }
        }
        t.pc = pc;
    }
}

void
ReplayDriver::runFast(const FlatTrace &flat)
{
    // One instantiation per (scheme, observer, policy) triple; the
    // observer branch compiles out entirely of the no-observer loops
    // and the policy is a concrete type from the box's variant.
    EngineObserver *const obs = engine_.observer();
    const auto dispatch = [&](auto scheme_tag) {
        using SchemeT = typename decltype(scheme_tag)::type;
        policy_.visit([&](auto &pol) {
            if (obs)
                runFastLoop<SchemeT>(flat, EngineObserverRef{obs}, pol);
            else
                runFastLoop<SchemeT>(flat, NoopEngineObserver{}, pol);
        });
    };
    switch (engine_.scheme()) {
      case SchemeKind::NS:
        dispatch(std::type_identity<detail::NsScheme>{});
        return;
      case SchemeKind::SNP:
        dispatch(std::type_identity<detail::SnpScheme>{});
        return;
      case SchemeKind::SP:
        dispatch(std::type_identity<detail::SpScheme>{});
        return;
      case SchemeKind::Infinite:
        dispatch(std::type_identity<detail::InfiniteScheme>{});
        return;
    }
    crw_unreachable("bad scheme kind");
}

void
ReplayDriver::run()
{
    if (ran_)
        crw_fatal << "ReplayDriver::run() called twice — a driver is "
                     "one run; rerunning would accumulate into the "
                     "finished run's counters ("
                  << replayContext(trace_, engine_, core_.policy())
                  << ")";
    ran_ = true;

    bool fast = false;
    bool batched = false;
    switch (path_) {
      case ReplayPath::Auto:
        fast = !engine_.checkInvariants() && fastEnabledByEnv();
        break;
      case ReplayPath::Fast:
        if (engine_.checkInvariants())
            crw_fatal << "ReplayPath::Fast with checkInvariants: the "
                         "post-event invariant walk only exists on "
                         "the oracle path ("
                      << replayContext(trace_, engine_,
                                       core_.policy())
                      << ")";
        fast = true;
        break;
      case ReplayPath::Legacy:
        fast = false;
        break;
      case ReplayPath::Batched:
        if (engine_.checkInvariants() || engine_.observer())
            crw_fatal << "ReplayPath::Batched with "
                      << (engine_.checkInvariants() ? "checkInvariants"
                                                    : "an observer")
                      << ": batched replay is the headless sweep "
                         "path; oracle-only features fall back to "
                         "the per-point loops ("
                      << replayContext(trace_, engine_,
                                       core_.policy())
                      << ")";
        batched = true;
        break;
    }

    if (batched) {
        if (!flat_) {
            ownedFlat_ =
                std::make_unique<FlatTrace>(FlatTrace::build(trace_));
            flat_ = ownedFlat_.get();
        }
        for (std::size_t i = 0; i < threads_.size(); ++i)
            threads_[i].pc = flat_->threads[i].begin;
        WindowEngine *eng = &engine_;
        if (!detail_replay::runLockstepLoop(trace_, *flat_, core_,
                                            policy_, streams_,
                                            threads_, &eng, tracker_,
                                            1))
            crw_fatal << "a width-1 batch diverged — residency can "
                         "only disagree *between* lanes ("
                      << replayContext(trace_, engine_,
                                       core_.policy())
                      << ")";
        usedBatched_ = true;
    } else if (fast) {
        if (!flat_) {
            ownedFlat_ =
                std::make_unique<FlatTrace>(FlatTrace::build(trace_));
            flat_ = ownedFlat_.get();
        }
        for (std::size_t i = 0; i < threads_.size(); ++i)
            threads_[i].pc = flat_->threads[i].begin;
        runFast(*flat_);
        usedFast_ = true;
    } else {
        runLegacy();
    }

    for (std::size_t i = 0; i < threads_.size(); ++i) {
        if (threads_[i].state != RState::Finished)
            crw_fatal << "replay deadlock: thread " << i << " ("
                      << trace_.threads[i].name
                      << ") never finished — trace/config mismatch, "
                      << replayContext(trace_, engine_,
                                       core_.policy());
    }
    tracker_.finish(engine_.now());
}

RunMetrics
ReplayDriver::metrics() const
{
    if (!ran_)
        crw_fatal << "ReplayDriver::metrics() called before run() — "
                     "the engine and tracker are unpopulated and "
                     "would yield an all-zero record ("
                  << replayContext(trace_, engine_, core_.policy())
                  << ")";
    return collectRunMetrics(engine_, tracker_, core_.slackness(),
                             core_.policy(),
                             static_cast<int>(threads_.size()),
                             trace_.misspelled);
}

} // namespace crw
