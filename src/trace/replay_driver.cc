#include "trace/replay_driver.h"

#include <string>

#include "common/logging.h"

namespace crw {
namespace {

/**
 * Replay coordinate for fatal diagnostics: which behavior's trace was
 * being replayed, and under which (scheme, windows, policy). A stuck
 * or mismatched replay is almost always one bad point in a large
 * sweep, so the bare thread id alone is undebuggable.
 */
std::string
replayContext(const EventTrace &trace, const WindowEngine &engine,
              SchedPolicy policy)
{
    return "behavior \"" + trace.key + "\", " +
           schemeName(engine.scheme()) + "/w" +
           std::to_string(engine.numWindows()) + "/" +
           policyName(policy);
}

} // namespace

ReplayDriver::ReplayDriver(const EventTrace &trace,
                           const EngineConfig &engine_config,
                           SchedPolicy policy)
    : trace_(trace),
      engine_(engine_config),
      core_(policy),
      tracker_(64)
{
    // The tracker is driven directly from the dispatch loop below (a
    // devirtualized call on the final class) rather than through
    // WindowEngine's observer hook; the callbacks and arguments are
    // identical to what the engine would deliver.
    streams_.reserve(trace.streams.size());
    for (const TraceStreamInfo &s : trace.streams) {
        RStream rs;
        rs.capacity = s.capacity;
        rs.openWriters = static_cast<int>(s.writers);
        streams_.push_back(std::move(rs));
    }
    threads_.reserve(trace.threads.size());
    // Spawn order: dense tids, ready queue back — as Scheduler::spawn.
    for (std::size_t i = 0; i < trace.threads.size(); ++i) {
        const ThreadId tid = static_cast<ThreadId>(i);
        engine_.addThread(tid);
        threads_.push_back(RThread{
            TraceCursor(trace.threads[i].code), RState::Ready});
        core_.enqueueBack(tid);
    }
}

void
ReplayDriver::wakeAll(std::vector<ThreadId> &waiters)
{
    // Mirror of Stream::wakeAll + Scheduler::wake: wake-all with a
    // state re-check, queue placement decided by the policy against
    // *this* engine's residency at wake time.
    for (const ThreadId tid : waiters) {
        RThread &t = threads_[static_cast<std::size_t>(tid)];
        if (t.state != RState::Blocked)
            continue;
        t.state = RState::Ready;
        core_.wake(tid, engine_.isResident(tid));
    }
    waiters.clear();
}

void
ReplayDriver::runThread(ThreadId tid)
{
    RThread &t = threads_[static_cast<std::size_t>(tid)];
    TraceCursor &cur = t.cursor;
    std::uint64_t operand;

    while (!cur.atEnd()) {
        const TraceOp op = cur.peek(operand);
        switch (op) {
          case TraceOp::Save:
            engine_.save();
            tracker_.onSave(tid, engine_.depthOf(tid));
            cur.advance();
            break;
          case TraceOp::Restore:
            engine_.restore();
            tracker_.onRestore(tid, engine_.depthOf(tid));
            cur.advance();
            break;
          case TraceOp::Charge:
            engine_.charge(static_cast<Cycles>(operand));
            cur.advance();
            break;
          case TraceOp::Put: {
            RStream &s = streams_[operand];
            if (s.count == s.capacity) {
                // Stream::rawPut's blocking loop: notify readers,
                // park; re-entered (cursor unmoved) when re-run.
                wakeAll(s.readWaiters);
                s.writeWaiters.push_back(tid);
                t.state = RState::Blocked;
                return;
            }
            ++s.count;
            wakeAll(s.readWaiters);
            cur.advance();
            break;
          }
          case TraceOp::Get: {
            RStream &s = streams_[operand];
            if (s.count == 0) {
                if (s.openWriters == 0) {
                    // EOF: rawGet returns without byte or block.
                    cur.advance();
                    break;
                }
                wakeAll(s.writeWaiters);
                s.readWaiters.push_back(tid);
                t.state = RState::Blocked;
                return;
            }
            --s.count;
            wakeAll(s.writeWaiters);
            cur.advance();
            break;
          }
          case TraceOp::Close: {
            RStream &s = streams_[operand];
            crw_assert(s.openWriters > 0);
            if (--s.openWriters == 0)
                wakeAll(s.readWaiters);
            cur.advance();
            break;
          }
          case TraceOp::Exit:
            cur.advance();
            if (!cur.atEnd())
                crw_fatal << "replay: events after Exit in thread "
                          << tid << " ("
                          << trace_.threads[static_cast<std::size_t>(
                                                tid)]
                                 .name
                          << ") — "
                          << replayContext(trace_, engine_,
                                           core_.policy());
            engine_.threadExit();
            tracker_.onExit(tid);
            t.state = RState::Finished;
            return;
        }
    }
    crw_fatal << "replay: script of thread " << tid << " ("
              << trace_.threads[static_cast<std::size_t>(tid)].name
              << ") ended without Exit — "
              << replayContext(trace_, engine_, core_.policy());
}

void
ReplayDriver::run()
{
    crw_assert(!ran_);
    ran_ = true;
    while (!core_.idle()) {
        const ThreadId tid = core_.dispatchNext();
        RThread &t = threads_[static_cast<std::size_t>(tid)];
        crw_assert(t.state == RState::Ready);
        t.state = RState::Running;
        if (engine_.current() != tid) {
            const ThreadId from = engine_.current();
            const Cycles begin = engine_.now();
            engine_.contextSwitch(tid);
            tracker_.onSwitch(from, tid, engine_.depthOf(tid), begin,
                              engine_.now());
        }
        runThread(tid);
    }
    for (std::size_t i = 0; i < threads_.size(); ++i) {
        if (threads_[i].state != RState::Finished)
            crw_fatal << "replay deadlock: thread " << i << " ("
                      << trace_.threads[i].name
                      << ") never finished — trace/config mismatch, "
                      << replayContext(trace_, engine_,
                                       core_.policy());
    }
    tracker_.finish(engine_.now());
}

RunMetrics
ReplayDriver::metrics() const
{
    crw_assert(ran_);
    return collectRunMetrics(engine_, tracker_, core_.slackness(),
                             core_.policy(),
                             static_cast<int>(threads_.size()),
                             trace_.misspelled);
}

} // namespace crw
