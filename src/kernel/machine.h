/**
 * @file
 * A booted SPARC machine with the window-management kernel loaded,
 * plus the Table 2 measurement harness.
 */

#ifndef CRW_KERNEL_MACHINE_H_
#define CRW_KERNEL_MACHINE_H_

#include <string>

#include "asm/assembler.h"
#include "kernel/kernel.h"
#include "sparc/cpu.h"
#include "win/cost_model.h"

namespace crw {
namespace kernel {

/** Which trap handlers are installed. */
enum class KernelFlavor {
    Conventional, ///< classic single-reserved-window handlers (NS)
    Sharing,      ///< the paper's mask-based / restore-in-place pair
};

/**
 * A machine with vectors+handlers+switch routines at kKernelBase and
 * @p user_source at kUserBase. Boots in supervisor mode at the user
 * symbol "start", CWP 0, %sp at kStackTop, traps enabled, with the
 * WIM/resident-mask matching the flavor.
 */
class Machine
{
  public:
    Machine(KernelFlavor flavor, int num_windows,
            const std::string &user_source);

    sparc::Memory mem;
    sparc::Cpu cpu;
    sparcasm::Program program;

    /** Set a register of a specific window via raw access. */
    void setWindowReg(int window, int reg, Word value);
    Word windowReg(int window, int reg) const;

    /** Run until halt; fatal-fails the message on error stops. */
    Word runToHalt(std::uint64_t max_steps = 10'000'000);
};

/**
 * Measures the cycle cost of every Table 2 context-switch case and of
 * the window trap handlers by staging the exact machine state each
 * case requires and running the real kernel routines.
 *
 * Uses 7 windows, like the Fujitsu S-20 the paper measured on.
 */
class Table2Harness
{
  public:
    explicit Table2Harness(int num_windows = 7);

    /** NS switch flushing @p flush_count windows; @p refill reloads
     *  the scheduled thread's top frame (the paper's restore=1). */
    Cycles measureNs(int flush_count, bool refill = true);

    /** SNP switch; at most one victim spill. */
    Cycles measureSnp(bool spill, bool refill);

    /** SP switch; zero to two victim spills. */
    Cycles measureSp(int spills, bool refill);

    /** Conventional overflow trap (trap entry + spill + rett). */
    Cycles measureConventionalOverflow();

    /** Conventional underflow trap (refill one window below). */
    Cycles measureConventionalUnderflow();

    /** Sharing overflow trap (mask scan + bottom spill). */
    Cycles measureSharingOverflow();

    /** Sharing underflow: restore-in-place + restore emulation. */
    Cycles measureSharingUnderflow();

    /**
     * A CostModel whose switch lines and trap costs come from these
     * measurements — the "measured" preset the event-level benches
     * can use instead of the paper's Table 2 numbers.
     */
    CostModel measuredCostModel();

    int numWindows() const { return numWindows_; }

  private:
    int numWindows_;
};

} // namespace kernel
} // namespace crw

#endif // CRW_KERNEL_MACHINE_H_
