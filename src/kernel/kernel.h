/**
 * @file
 * The window-management "multi-tasking monitor": SPARC assembly
 * sources for trap handlers and context-switch routines, plus the
 * memory layout they assume.
 *
 * This is the instruction-level counterpart of the paper's modified
 * SunOS trap handlers (§1, §6.1). Three pieces:
 *
 *  1. conventionalKernelSource(): the classic V8 single-reserved-
 *     window overflow/underflow handlers (the NS substrate) — spill
 *     one window on overflow, refill one window *below* on underflow.
 *
 *  2. sharingKernelSource(): the paper's handlers — a mask-based
 *     overflow handler that spills the stack-bottom window of the
 *     current thread's resident run, and the §3.2 underflow handler
 *     that copies the live in registers to the outs and restores the
 *     caller's frame *in place*, emulating the trapped restore's add
 *     function (§4.3) instead of re-executing it.
 *
 *  3. switchRoutinesSource(): ns_switch / snp_switch / sp_switch —
 *     the context-switch paths whose cycle costs Table 2 reports.
 *     Each handles the window-transfer cases the paper lists, driven
 *     by a staged thread control block (see offsets below), exactly
 *     like the paper's static cycle measurement.
 *
 * Register conventions (monitor-owned): %g1 = from-TCB, %g2 = to-TCB,
 * %g5/%g6 = scratch, %g7 = resident-window mask of the running thread.
 * User code may not rely on these across calls into the monitor.
 *
 * Known restriction (documented per §4.3): the trapped `restore`'s
 * operands must be in registers (or globals) that are still available
 * after the in-to-out copy, i.e. %iN or %gN, with an immediate or
 * %iN/%gN second operand — which is what compilers emit for the
 * return-value peephole the paper describes.
 */

#ifndef CRW_KERNEL_KERNEL_H_
#define CRW_KERNEL_KERNEL_H_

#include <string>

#include "common/types.h"

namespace crw {
namespace kernel {

// --- memory layout ---
inline constexpr Addr kVectorBase = 0x0000;  ///< trap table (TBR = 0)
inline constexpr Addr kKernelBase = 0x0800;  ///< handler code
inline constexpr Addr kScratchBase = 0x3000; ///< 32-word reg scratch
inline constexpr Addr kUserBase = 0x4000;    ///< test/user programs
inline constexpr Addr kStackTop = 0xF0000;   ///< initial %sp

// --- TCB field offsets ---
inline constexpr int kTcbPsr = 0;    ///< saved PSR (holds top CWP)
inline constexpr int kTcbResume = 4; ///< resume address
inline constexpr int kTcbMask = 8;   ///< resident-window mask
inline constexpr int kTcbFlags = 12; ///< bit0: top frame spilled
inline constexpr int kTcbSp = 16;    ///< memory sp of the top frame
/** 8-word out-register save area; 8-byte aligned for std/ldd. */
inline constexpr int kTcbOuts = 24;
inline constexpr int kTcbSize = 56;

/**
 * Vector table + conventional handlers, specialized for
 * @p num_windows (the WIM rotation width).
 */
std::string conventionalKernelSource(int num_windows);

/** Vector table + the paper's sharing handlers. */
std::string sharingKernelSource(int num_windows);

/**
 * The ns_switch / snp_switch / sp_switch routines (appended to either
 * kernel). Entry: %g1 = from TCB, %g2 = to TCB, %o2 = scheme-specific
 * argument (NS: number of resident windows to flush).
 */
std::string switchRoutinesSource(int num_windows);

} // namespace kernel
} // namespace crw

#endif // CRW_KERNEL_KERNEL_H_
