#include "kernel/kernel.h"

#include <sstream>

#include "common/logging.h"
#include "sparc/regfile.h"

namespace crw {
namespace kernel {

namespace {

/** Common .set prologue with layout constants. */
std::string
prologue(int num_windows)
{
    std::ostringstream os;
    os << "    .set NWIN, " << num_windows << "\n"
       << "    .set NWIN_M1, " << (num_windows - 1) << "\n"
       << "    .set WMASK, "
       << sparc::RegFile::windowMask(num_windows) << "\n"
       << "    .set TCB_PSR, " << kTcbPsr << "\n"
       << "    .set TCB_RESUME, " << kTcbResume << "\n"
       << "    .set TCB_MASK, " << kTcbMask << "\n"
       << "    .set TCB_FLAGS, " << kTcbFlags << "\n"
       << "    .set TCB_SP, " << kTcbSp << "\n"
       << "    .set TCB_OUTS, " << kTcbOuts << "\n"
       << "    .set SCRATCH, " << kScratchBase << "\n";
    return os.str();
}

/** Trap table: overflow and underflow vectors. */
std::string
vectorTable()
{
    return
        "    .org 0x50            ! tt 0x05: window overflow\n"
        "    ba win_ovf\n"
        "    nop\n"
        "    .org 0x60            ! tt 0x06: window underflow\n"
        "    ba win_unf\n"
        "    nop\n";
}

/** 8 x std spilling the current window's ins+locals to [%sp]. */
constexpr const char *kSpillWindow =
    "    std %l0, [%sp + 0]\n"
    "    std %l2, [%sp + 8]\n"
    "    std %l4, [%sp + 16]\n"
    "    std %l6, [%sp + 24]\n"
    "    std %i0, [%sp + 32]\n"
    "    std %i2, [%sp + 40]\n"
    "    std %i4, [%sp + 48]\n"
    "    std %i6, [%sp + 56]\n";

/** 8 x ldd refilling the current window from [%sp]. */
constexpr const char *kFillWindow =
    "    ldd [%sp + 0], %l0\n"
    "    ldd [%sp + 8], %l2\n"
    "    ldd [%sp + 16], %l4\n"
    "    ldd [%sp + 24], %l6\n"
    "    ldd [%sp + 32], %i0\n"
    "    ldd [%sp + 40], %i2\n"
    "    ldd [%sp + 48], %i4\n"
    "    ldd [%sp + 56], %i6\n";

} // namespace

std::string
conventionalKernelSource(int num_windows)
{
    crw_assert(num_windows >= 3);
    std::string src = prologue(num_windows) + vectorTable();
    src += "    .org 0x800\n";

    // --- conventional overflow: spill the window above the trap
    // window (the stack-bottom, Fig. 3) and rotate WIM up. ---
    src +=
        "win_ovf:\n"
        "    mov %wim, %l3\n"
        "    mov 0, %wim\n"
        "    save                 ! into the victim (stack-bottom)\n";
    src += kSpillWindow;
    src +=
        "    restore              ! back to the trap window\n"
        "    srl %l3, 1, %l4      ! WIM: invalid bit moves up\n"
        "    sll %l3, NWIN_M1, %l5\n"
        "    or %l4, %l5, %l4\n"
        "    mov %l4, %wim\n"
        "    jmpl %l1, %g0        ! retry the save\n"
        "    rett %l2\n";

    // --- conventional underflow: refill the window two below the
    // trap window, where the missing frame lived (Fig. 4). ---
    src +=
        "win_unf:\n"
        "    mov %wim, %l3\n"
        "    mov 0, %wim\n"
        "    restore              ! the trapped window\n"
        "    restore              ! the missing window; %sp = its frame\n";
    src += kFillWindow;
    src +=
        "    save\n"
        "    save                 ! back to the trap window\n"
        "    sll %l3, 1, %l4      ! WIM: invalid bit moves down\n"
        "    srl %l3, NWIN_M1, %l5\n"
        "    or %l4, %l5, %l4\n"
        "    mov %l4, %wim\n"
        "    jmpl %l1, %g0        ! retry the restore\n"
        "    rett %l2\n";
    return src;
}

std::string
sharingKernelSource(int num_windows)
{
    crw_assert(num_windows >= 3);
    std::string src = prologue(num_windows) + vectorTable();
    src += "    .org 0x800\n";

    // --- sharing overflow: spill the stack-bottom window of the
    // current thread's resident run (mask in %g7), make room for the
    // trap window, recompute WIM = ~mask. Spillage is always from
    // the stack-bottom (paper §3.1). ---
    src +=
        "win_ovf:\n"
        "    mov 0, %wim\n"
        "    mov %psr, %g5        ! CWP = the save target, which is\n"
        "                         ! always the thread's own dead\n"
        "                         ! boundary window (reserved / PRW)\n"
        "    and %g5, 0x1f, %l5   ! target index\n"
        "    mov 1, %l6\n"
        "    sll %l6, %l5, %l6    ! target bit\n"
        "    set SCRATCH, %l7\n"
        "    ld [%l7 + 152], %l0  ! free-window mask\n"
        "    andn %l0, %l6, %l0   ! the target joins the run\n"
        "    or %g7, %l6, %g7\n"
        "    srl %l6, 1, %l4      ! bit of above(target): the new\n"
        "    sll %l6, NWIN_M1, %l3 ! boundary window\n"
        "    or %l4, %l3, %l4\n"
        "    set WMASK, %l3       ! confine rotation to NWIN bits\n"
        "    and %l4, %l3, %l4\n"
        "    btst %l4, %l0\n"
        "    bne ovf_done         ! boundary is free: cheap trap\n"
        "    st %l0, [%l7 + 152]\n"
        "    ! The boundary holds somebody's stack-bottom window\n"
        "    ! (§3.1: spillage is always from a stack-bottom): spill\n"
        "    ! it and mark the slot free.\n"
        "    andn %g7, %l4, %g7   ! leaves our run if it was ours\n"
        "    or %l0, %l4, %l0\n"
        "    st %l0, [%l7 + 152]\n"
        "    add %l5, NWIN_M1, %l5 ! index of above(target), mod NWIN\n"
        "    cmp %l5, NWIN\n"
        "    bl ovf_rotate\n"
        "    nop\n"
        "    sub %l5, NWIN, %l5\n"
        "ovf_rotate:\n"
        "    andn %g5, 0x1f, %l6\n"
        "    or %l6, %l5, %l6\n"
        "    mov %l6, %psr        ! rotate into the victim\n";
    src += kSpillWindow;
    src +=
        "    mov %g5, %psr        ! back to the trap window\n"
        "ovf_done:\n"
        "    xnor %g7, %g0, %l4   ! WIM = ~resident mask\n"
        "    mov %l4, %wim\n"
        "    jmpl %l1, %g0        ! retry the save\n"
        "    rett %l2\n";

    // --- the paper's underflow (§3.2): restore the caller's frame
    // IN PLACE after copying the live ins to the outs; then emulate
    // the trapped restore's add function (§4.3) and skip it. No
    // window is ever spilled here, and the resident mask/WIM do not
    // change. ---
    src +=
        "win_unf:\n"
        "    mov 0, %wim\n"
        "    mov %psr, %g5\n"
        "    restore              ! into the callee's window\n"
        "    mov %i0, %o0         ! ins -> outs: the virtual move\n"
        "    mov %i1, %o1\n"
        "    mov %i2, %o2\n"
        "    mov %i3, %o3\n"
        "    mov %i4, %o4\n"
        "    mov %i5, %o5\n"
        "    mov %i6, %o6         ! the caller's %sp\n"
        "    mov %i7, %o7         ! the caller's return address\n"
        "    ldd [%o6 + 0], %l0   ! refill the caller's frame here\n"
        "    ldd [%o6 + 8], %l2\n"
        "    ldd [%o6 + 16], %l4\n"
        "    ldd [%o6 + 24], %l6\n"
        "    ldd [%o6 + 32], %i0\n"
        "    ldd [%o6 + 40], %i2\n"
        "    ldd [%o6 + 48], %i4\n"
        "    ldd [%o6 + 56], %i6\n"
        "    save                 ! back to the trap window\n"
        "    xnor %g7, %g0, %l4\n"
        "    mov %l4, %wim\n"
        "    ld [%l1], %l4        ! the trapped restore instruction\n"
        "    srl %l4, 25, %l5\n"
        "    and %l5, 0x1f, %l5   ! rd: %g0 (no-op) or %o0 (§4.3)\n"
        "    cmp %l5, 0\n"
        "    be unf_done\n"
        "    nop\n"
        "    set SCRATCH, %l5     ! operand table: globals + callee ins\n"
        "    st %g0, [%l5 + 0]\n"
        "    st %g1, [%l5 + 4]\n"
        "    st %g2, [%l5 + 8]\n"
        "    st %g3, [%l5 + 12]\n"
        "    st %g4, [%l5 + 16]\n"
        "    st %g5, [%l5 + 20]\n"
        "    st %g6, [%l5 + 24]\n"
        "    st %g7, [%l5 + 28]\n"
        "    st %i0, [%l5 + 96]   ! callee ins survive as our ins\n"
        "    st %i1, [%l5 + 100]\n"
        "    st %i2, [%l5 + 104]\n"
        "    st %i3, [%l5 + 108]\n"
        "    st %i4, [%l5 + 112]\n"
        "    st %i5, [%l5 + 116]\n"
        "    st %i6, [%l5 + 120]\n"
        "    st %i7, [%l5 + 124]\n"
        "    srl %l4, 14, %l6     ! rs1 value\n"
        "    and %l6, 0x1f, %l6\n"
        "    sll %l6, 2, %l6\n"
        "    ld [%l5 + %l6], %l6\n"
        "    srl %l4, 13, %l7     ! i bit\n"
        "    btst 1, %l7\n"
        "    bne unf_imm\n"
        "    nop\n"
        "    and %l4, 0x1f, %l7   ! rs2 value\n"
        "    sll %l7, 2, %l7\n"
        "    ld [%l5 + %l7], %l7\n"
        "    ba unf_add\n"
        "    nop\n"
        "unf_imm:\n"
        "    sll %l4, 19, %l7     ! sign-extend simm13\n"
        "    sra %l7, 19, %l7\n"
        "unf_add:\n"
        "    add %l6, %l7, %l6\n"
        "    mov %l6, %i0         ! the virtual caller's %o0\n"
        "unf_done:\n"
        "    jmpl %l2, %g0        ! SKIP the emulated restore\n"
        "    rett %l2 + 4\n";
    return src;
}

std::string
switchRoutinesSource(int num_windows)
{
    crw_assert(num_windows >= 3);
    std::string src;

    // Shared epilogue pieces are open-coded per routine so each
    // routine's cycle count is self-contained (as measured in the
    // paper's Table 2).

    // --- NS: flush every resident window of `from` (count in %o2),
    // reload `to`'s top frame, single-window WIM. ---
    src +=
        "ns_switch:               ! g1=from g2=to, o2=resident count\n"
        "    mov %psr, %g5\n"
        "    mov 0, %wim\n"
        "    st %g5, [%g1 + TCB_PSR]\n"
        "    std %o0, [%g1 + TCB_OUTS + 0]\n"
        "    std %o2, [%g1 + TCB_OUTS + 8]\n"
        "    std %o4, [%g1 + TCB_OUTS + 16]\n"
        "    std %o6, [%g1 + TCB_OUTS + 24]\n"
        "    add %o7, 8, %g6\n"
        "    st %g6, [%g1 + TCB_RESUME]\n"
        "    mov %o2, %g6\n"
        "    tst %g6\n"
        "    be ns_flushed\n"
        "    st %g2, [%g1 + TCB_FLAGS] ! nonzero: frames in memory\n"
        "ns_flush:\n";
    src += kSpillWindow;
    src +=
        "    subcc %g6, 1, %g6\n"
        "    bne ns_flush\n"
        "    restore              ! down to the next frame\n"
        "ns_flushed:\n"
        "    set SCRATCH, %g4     ! ready-queue bookkeeping\n"
        "    ld [%g4 + 128], %g6\n"
        "    st %g1, [%g4 + 132]\n"
        "    inc %g6\n"
        "    st %g6, [%g4 + 128]\n"
        "    st %g6, [%g4 + 136]  ! run-queue length record\n"
        "    ld [%g2 + TCB_PSR], %g5\n"
        "    mov %g5, %psr        ! rotate to the target's top window\n"
        "    ld [%g2 + TCB_FLAGS], %g6\n"
        "    tst %g6              ! nonzero: frames in memory\n"
        "    be ns_no_refill\n"
        "    nop\n"
        "    ld [%g2 + TCB_OUTS + 24], %sp\n";
    src += kFillWindow;
    src +=
        "    st %g0, [%g2 + TCB_FLAGS]\n"
        "ns_no_refill:\n"
        "    ldd [%g2 + TCB_OUTS + 0], %o0\n"
        "    ldd [%g2 + TCB_OUTS + 8], %o2\n"
        "    ldd [%g2 + TCB_OUTS + 16], %o4\n"
        "    ldd [%g2 + TCB_OUTS + 24], %o6\n"
        "    and %g5, 0x1f, %g6   ! WIM: only the top window valid\n"
        "    mov 1, %g7\n"
        "    sll %g7, %g6, %g7\n"
        "    xnor %g7, %g0, %g6\n"
        "    mov %g6, %wim\n"
        "    ld [%g2 + TCB_RESUME], %g6\n"
        "    jmp %g6\n"
        "    nop\n";

    // --- SNP: windows stay in situ; save/restore the stack-top outs
    // through the TCB (the single reserved window is recycled); at
    // most one victim spill (window index in %o3, -1 = none). ---
    src +=
        "snp_switch:              ! g1=from g2=to, o3=victim | -1\n"
        "    mov %psr, %g5\n"
        "    mov 0, %wim\n"
        "    st %g5, [%g1 + TCB_PSR]\n"
        "    std %o0, [%g1 + TCB_OUTS + 0]\n"
        "    std %o2, [%g1 + TCB_OUTS + 8]\n"
        "    std %o4, [%g1 + TCB_OUTS + 16]\n"
        "    std %o6, [%g1 + TCB_OUTS + 24]\n"
        "    add %o7, 8, %g6\n"
        "    st %g6, [%g1 + TCB_RESUME]\n"
        "    mov %o3, %g6\n"
        "    set SCRATCH, %g4     ! ready-queue bookkeeping\n"
        "    ld [%g4 + 128], %g5\n"
        "    st %g1, [%g4 + 132]\n"
        "    inc %g5\n"
        "    st %g5, [%g4 + 128]\n"
        "    tst %g6\n"
        "    bneg snp_no_spill\n"
        "    nop\n"
        "    mov %psr, %g5        ! rotate to the victim window\n"
        "    andn %g5, 0x1f, %g5\n"
        "    or %g5, %g6, %g5\n"
        "    mov %g5, %psr\n";
    src += kSpillWindow;
    src +=
        "    st %sp, [%g4 + 136]  ! record the victim frame address\n"
        "    ld [%g4 + 140], %g5  ! victim ownership bookkeeping\n"
        "    or %g5, %g6, %g5\n"
        "    st %g5, [%g4 + 140]\n"
        "    mov %g0, %g5\n"
        "snp_no_spill:\n"
        "    ld [%g2 + TCB_PSR], %g5\n"
        "    mov %g5, %psr\n"
        "    ld [%g2 + TCB_FLAGS], %g6\n"
        "    btst 1, %g6\n"
        "    be snp_no_refill\n"
        "    nop\n"
        "    ld [%g2 + TCB_OUTS + 24], %sp\n";
    src += kFillWindow;
    src +=
        "    st %g0, [%g2 + TCB_FLAGS]\n"
        "snp_no_refill:\n"
        "    ldd [%g2 + TCB_OUTS + 0], %o0\n"
        "    ldd [%g2 + TCB_OUTS + 8], %o2\n"
        "    ldd [%g2 + TCB_OUTS + 16], %o4\n"
        "    ldd [%g2 + TCB_OUTS + 24], %o6\n"
        "    ld [%g2 + TCB_MASK], %g7\n"
        "    mov NWIN, %g6        ! per-window WIM calculation loop\n"
        "    mov 0, %g4           ! (the paper\'s software overhead)\n"
        "snp_wim:\n"
        "    or %g4, 1, %g4\n"
        "    subcc %g6, 1, %g6\n"
        "    bne snp_wim\n"
        "    sll %g4, 1, %g4\n"
        "    srl %g4, 1, %g4\n"
        "    xnor %g7, %g0, %g6\n"
        "    and %g6, %g4, %g6\n"
        "    mov %g6, %wim\n"
        "    ld [%g2 + TCB_RESUME], %g6\n"
        "    jmp %g6\n"
        "    nop\n";

    // --- SP: the stack-top outs and PCs stay in the private reserved
    // window, so the resident-to-resident path moves nothing; up to
    // two victim spills (%o3, %o4) for the windowless-thread case. ---
    src +=
        "sp_switch:               ! g1=from g2=to, o3/o4=victims | -1\n"
        "    mov %psr, %g5\n"
        "    mov 0, %wim\n"
        "    st %g5, [%g1 + TCB_PSR]\n"
        "    add %o7, 8, %g6\n"
        "    st %g6, [%g1 + TCB_RESUME]\n"
        "    mov %o3, %g6\n"
        "    mov %o4, %g7         ! recomputed from the mask below\n"
        "    set SCRATCH, %g4     ! ready-queue bookkeeping\n"
        "    ld [%g4 + 128], %g5\n"
        "    st %g1, [%g4 + 132]\n"
        "    inc %g5\n"
        "    st %g5, [%g4 + 128]\n"
        "    tst %g6\n"
        "    bneg sp_no_spill1\n"
        "    nop\n"
        "    mov %psr, %g5\n"
        "    andn %g5, 0x1f, %g5\n"
        "    or %g5, %g6, %g5\n"
        "    mov %g5, %psr\n";
    src += kSpillWindow;
    src +=
        "    st %sp, [%g4 + 136]  ! record the victim frame address\n"
        "    ld [%g4 + 140], %g5\n"
        "    st %g5, [%g4 + 144]\n"
        "sp_no_spill1:\n"
        "    tst %g7\n"
        "    bneg sp_no_spill2\n"
        "    nop\n"
        "    mov %psr, %g5\n"
        "    andn %g5, 0x1f, %g5\n"
        "    or %g5, %g7, %g5\n"
        "    mov %g5, %psr\n";
    src += kSpillWindow;
    src +=
        "    st %sp, [%g4 + 136]\n"
        "    ld [%g4 + 140], %g5\n"
        "    st %g5, [%g4 + 144]\n"
        "sp_no_spill2:\n"
        "    ld [%g2 + TCB_PSR], %g5\n"
        "    mov %g5, %psr\n"
        "    ld [%g2 + TCB_FLAGS], %g6\n"
        "    btst 1, %g6\n"
        "    be sp_no_refill\n"
        "    nop\n"
        "    ld [%g2 + TCB_SP], %sp\n";
    src += kFillWindow;
    src +=
        "    st %sp, [%g2 + TCB_SP]  ! track the live frame address\n"
        "    ldd [%g2 + TCB_OUTS + 0], %o0\n"
        "    ldd [%g2 + TCB_OUTS + 8], %o2\n"
        "    ldd [%g2 + TCB_OUTS + 16], %o4\n"
        "    ldd [%g2 + TCB_OUTS + 24], %o6\n"
        "    st %g0, [%g2 + TCB_FLAGS]\n"
        "sp_no_refill:\n"
        "    ld [%g2 + TCB_MASK], %g7\n"
        "    mov NWIN, %g6        ! per-window WIM calculation loop\n"
        "    mov 0, %g4           ! (the paper\'s software overhead)\n"
        "sp_wim:\n"
        "    or %g4, 1, %g4\n"
        "    subcc %g6, 1, %g6\n"
        "    bne sp_wim\n"
        "    sll %g4, 1, %g4\n"
        "    srl %g4, 1, %g4\n"
        "    xnor %g7, %g0, %g6\n"
        "    and %g6, %g4, %g6\n"
        "    mov %g6, %wim\n"
        "    ld [%g2 + TCB_RESUME], %g6\n"
        "    jmp %g6\n"
        "    nop\n";
    return src;
}

} // namespace kernel
} // namespace crw
