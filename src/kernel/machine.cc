#include "kernel/machine.h"

#include "common/logging.h"
#include "sparc/isa.h"

namespace crw {
namespace kernel {

using namespace sparc;

Machine::Machine(KernelFlavor flavor, int num_windows,
                 const std::string &user_source)
    : mem(1 << 20),
      cpu(mem, num_windows),
      program(sparcasm::assemble(
          (flavor == KernelFlavor::Conventional
               ? conventionalKernelSource(num_windows)
               : sharingKernelSource(num_windows)) +
              switchRoutinesSource(num_windows) + "\n    .org " +
              std::to_string(kUserBase) + "\n" + user_source,
          0))
{
    program.loadInto(mem);
    cpu.setTbr(0);
    cpu.setPsr(kPsrSBit | kPsrEtBit); // CWP = 0
    if (flavor == KernelFlavor::Conventional) {
        // One reserved window above the boot window.
        cpu.setWim(1u << (num_windows - 1));
    } else {
        // Resident mask in %g7, WIM = ~mask, everything else free.
        const Word mask = 1u;
        const Word all = RegFile::windowMask(num_windows);
        cpu.regFile().set(0, 7, mask);
        cpu.setWim(~mask);
        mem.writeWord(kScratchBase + 152, all & ~mask);
    }
    cpu.setReg(kRegSp, kStackTop);
    cpu.setPc(program.symbol("start"));
}

void
Machine::setWindowReg(int window, int reg, Word value)
{
    crw_assert(reg >= 8 && reg < 32); // globals live in the CPU view
    if (reg >= 16) {
        cpu.regFile().setRaw(window, reg - 16, value);
    } else {
        // outs of `window` are ins of the window above it.
        const int above = cpu.regFile().space().above(window);
        cpu.regFile().setRaw(above, 8 + (reg - 8), value);
    }
}

Word
Machine::windowReg(int window, int reg) const
{
    crw_assert(reg >= 8 && reg < 32);
    if (reg >= 16)
        return cpu.regFile().getRaw(window, reg - 16);
    const int above = cpu.regFile().space().above(window);
    return cpu.regFile().getRaw(above, 8 + (reg - 8));
}

Word
Machine::runToHalt(std::uint64_t max_steps)
{
    const StopReason r = cpu.run(max_steps);
    if (r != StopReason::Halted)
        crw_fatal << "kernel machine stopped: " << stopReasonName(r)
                  << " (" << cpu.errorMessage() << ") at pc=0x"
                  << std::hex << cpu.pc();
    return cpu.exitCode();
}

namespace {

// Staging constants for the Table 2 scenarios.
constexpr Addr kTcbA = 0x3800;
constexpr Addr kTcbB = 0x3900;
constexpr Addr kStackA = 0xE0000;  ///< from-thread frames
constexpr Addr kStackB = 0xD0000;  ///< to-thread top frame image
constexpr Addr kStackV = 0xC0000;  ///< victim-window frames
constexpr Word kMagicB = 0xB0B0;   ///< marker in B's saved %l0

/** Write a 16-word frame image (locals then ins) at @p addr. */
void
writeFrameImage(Memory &mem, Addr addr, Word l0, Word fp)
{
    for (int k = 0; k < 8; ++k)
        mem.writeWord(addr + 4 * static_cast<Addr>(k),
                      l0 + static_cast<Word>(k));
    for (int k = 0; k < 8; ++k)
        mem.writeWord(addr + 32 + 4 * static_cast<Addr>(k),
                      0x11110000u + static_cast<Word>(k));
    mem.writeWord(addr + 32 + 6 * 4, fp); // the frame's saved %i6
}

/**
 * Common switch-measurement scaffold: stage `from` running at window
 * 1 with its windows below it, `to` per flags, victims per indices,
 * then run `call <routine>` and return the routine's cycle cost.
 */
struct SwitchScenario
{
    const char *routine;   ///< ns_switch / snp_switch / sp_switch
    int fromResident = 1;  ///< windows of `from` (top at window 1)
    bool toSpilled = true; ///< refill B's top frame from memory
    int victim1 = -1;      ///< victim window index or -1
    int victim2 = -1;
    int nsFlushArg = -1;   ///< %o2 for ns_switch (-1: unused)
};

Cycles
runSwitchScenario(int num_windows, const SwitchScenario &sc)
{
    const std::string user = std::string("start:\n") +
                             "    call " + sc.routine + "\n" +
                             "    nop\n" +
                             "landing:\n" +
                             "    ta 0\n";
    // The switch routines themselves never trap (they run with
    // WIM = 0); flavor only matters for trap-handler tests.
    Machine m(KernelFlavor::Conventional, num_windows, user);
    Cpu &cpu = m.cpu;
    Memory &mem = m.mem;

    // --- thread A (from): top at window 1, deeper frames below ---
    const int top_a = 1;
    for (int k = 0; k < sc.fromResident; ++k) {
        const int w = (top_a + k) % num_windows;
        m.setWindowReg(w, kRegSp,
                       kStackA - 96u * static_cast<Word>(k));
        m.setWindowReg(w, kRegL0, 0xA0u + static_cast<Word>(k));
    }
    mem.writeWord(kTcbA + kTcbFlags, 0);

    // --- thread B (to) ---
    const int top_b = num_windows - 2;
    const Word psr_b = kPsrSBit |
                       static_cast<Word>(top_b); // ET=0 while jumping
    mem.writeWord(kTcbB + kTcbPsr, psr_b);
    mem.writeWord(kTcbB + kTcbResume, m.program.symbol("landing"));
    mem.writeWord(kTcbB + kTcbMask, 1u << top_b);
    mem.writeWord(kTcbB + kTcbFlags, sc.toSpilled ? 1 : 0);
    mem.writeWord(kTcbB + kTcbSp, kStackB);
    // B's saved outs: sane %sp and %o7.
    for (int k = 0; k < 8; ++k)
        mem.writeWord(kTcbB + kTcbOuts + 4 * static_cast<Addr>(k),
                      0x22220000u + static_cast<Word>(k));
    mem.writeWord(kTcbB + kTcbOuts + 6 * 4, kStackB);
    if (sc.toSpilled) {
        writeFrameImage(mem, kStackB, kMagicB, kStackB + 96);
    } else {
        // Resident: put B's top frame contents into the window file.
        m.setWindowReg(top_b, kRegL0, kMagicB);
        m.setWindowReg(top_b, kRegSp, kStackB);
    }

    // --- victims ---
    for (const int v : {sc.victim1, sc.victim2}) {
        if (v >= 0) {
            m.setWindowReg(v, kRegSp,
                           kStackV - 96u * static_cast<Word>(v));
            m.setWindowReg(v, kRegL0, 0xCC00u + static_cast<Word>(v));
        }
    }

    // --- running context: supervisor, traps off, CWP = A's top ---
    cpu.setPsr(kPsrSBit | static_cast<Word>(top_a));
    cpu.setWim(0);
    cpu.regFile().set(top_a, 1, kTcbA); // %g1
    cpu.regFile().set(top_a, 2, kTcbB); // %g2
    if (sc.nsFlushArg >= 0)
        cpu.setReg(kRegO0 + 2, static_cast<Word>(sc.nsFlushArg));
    cpu.setReg(kRegO0 + 3, static_cast<Word>(sc.victim1));
    cpu.setReg(kRegO0 + 4, static_cast<Word>(sc.victim2));
    cpu.setPc(m.program.symbol("start"));

    const Cycles before = cpu.cycles();
    m.runToHalt();
    // Verify the scheduled thread really came back with its state.
    if (m.cpu.reg(kRegL0) != kMagicB)
        crw_fatal << "switch scenario: B's window not restored";
    // Subtract the halting `ta 0` (1 cycle); the call+delay-slot entry
    // belongs to the switch path, as in the paper's measurement.
    return cpu.cycles() - before - 1;
}

} // namespace

Table2Harness::Table2Harness(int num_windows)
    : numWindows_(num_windows)
{
    crw_assert(num_windows >= 5);
}

Cycles
Table2Harness::measureNs(int flush_count, bool refill)
{
    crw_assert(flush_count >= 0 && flush_count <= numWindows_ - 1);
    SwitchScenario sc;
    sc.routine = "ns_switch";
    sc.fromResident = std::max(flush_count, 1);
    sc.nsFlushArg = flush_count;
    sc.toSpilled = refill;
    return runSwitchScenario(numWindows_, sc);
}

Cycles
Table2Harness::measureSnp(bool spill, bool refill)
{
    SwitchScenario sc;
    sc.routine = "snp_switch";
    sc.toSpilled = refill;
    sc.victim1 = spill ? 3 : -1;
    return runSwitchScenario(numWindows_, sc);
}

Cycles
Table2Harness::measureSp(int spills, bool refill)
{
    crw_assert(spills >= 0 && spills <= 2);
    SwitchScenario sc;
    sc.routine = "sp_switch";
    sc.toSpilled = refill;
    sc.victim1 = spills >= 1 ? 3 : -1;
    sc.victim2 = spills >= 2 ? 4 : -1;
    return runSwitchScenario(numWindows_, sc);
}

Cycles
Table2Harness::measureConventionalOverflow()
{
    Machine m(KernelFlavor::Conventional, numWindows_,
              "start:\n"
              "    save %sp, -96, %sp\n"
              "    ta 0\n");
    // CWP = 2; window 1 (above) is the reserved window.
    m.cpu.setPsr(kPsrSBit | kPsrEtBit | 2);
    m.cpu.setWim(1u << 1);
    m.cpu.setReg(kRegSp, kStackA);
    // The victim (window 3, the stack-bottom... here the window above
    // the reserved one, i.e. window 0) needs a valid %sp to spill to.
    m.setWindowReg(0, kRegSp, kStackV);
    m.cpu.setPc(m.program.symbol("start"));
    const Cycles before = m.cpu.cycles();
    m.runToHalt();
    // Subtract the save itself (1) and the halt (1).
    return m.cpu.cycles() - before - 2;
}

Cycles
Table2Harness::measureConventionalUnderflow()
{
    Machine m(KernelFlavor::Conventional, numWindows_,
              "start:\n"
              "    restore\n"
              "    ta 0\n");
    // CWP = 2 returning into window 3, which is marked invalid; its
    // frame image sits at [fp of window 2].
    m.cpu.setPsr(kPsrSBit | kPsrEtBit | 2);
    m.cpu.setWim(1u << 3);
    m.cpu.setReg(kRegSp, kStackA);
    m.cpu.setReg(kRegFp, kStackB); // = window 3's frame address
    writeFrameImage(m.mem, kStackB, kMagicB, kStackB + 96);
    m.cpu.setPc(m.program.symbol("start"));
    const Cycles before = m.cpu.cycles();
    m.runToHalt();
    if (m.cpu.reg(kRegL0) != kMagicB)
        crw_fatal << "underflow refill failed";
    return m.cpu.cycles() - before - 2;
}

Cycles
Table2Harness::measureSharingOverflow()
{
    Machine m(KernelFlavor::Sharing, numWindows_,
              "start:\n"
              "    save %sp, -96, %sp\n"
              "    ta 0\n");
    // Thread resident in {2,3}; CWP = 2; window 1 is its dead
    // boundary (reserved), so the save traps into it; window 0 holds
    // another thread's stack-bottom -> the handler must spill it.
    const Word mask = (1u << 2) | (1u << 3);
    m.cpu.setPsr(kPsrSBit | kPsrEtBit | 2);
    m.cpu.regFile().set(2, 7, mask); // %g7
    m.cpu.setWim(~mask);
    // Nothing is free: window 0 is occupied, forcing the spill path.
    m.mem.writeWord(kScratchBase + 152, 0);
    m.cpu.setReg(kRegSp, kStackA);
    m.setWindowReg(0, kRegSp, kStackV);
    m.setWindowReg(0, kRegL0, 0x3333);
    m.cpu.setPc(m.program.symbol("start"));
    const Cycles before = m.cpu.cycles();
    m.runToHalt();
    if (m.mem.readWord(kStackV) != 0x3333)
        crw_fatal << "sharing overflow did not spill the bottom";
    if (m.cpu.cwp() != 1)
        crw_fatal << "sharing overflow: save not replayed";
    return m.cpu.cycles() - before - 2;
}

Cycles
Table2Harness::measureSharingUnderflow()
{
    Machine m(KernelFlavor::Sharing, numWindows_,
              "start:\n"
              "    restore %i0, 1, %o0\n"
              "    ta 0\n");
    // Thread resident only in window 2 (the callee); every other
    // window is someone else's. The caller's frame image lives at the
    // callee's %fp.
    const Word mask = 1u << 2;
    m.cpu.setPsr(kPsrSBit | kPsrEtBit | 2);
    m.cpu.regFile().set(2, 7, mask);
    m.cpu.setWim(~mask);
    m.cpu.setReg(kRegSp, kStackA);
    m.cpu.setReg(kRegFp, kStackB);
    m.cpu.setReg(kRegI0, 41); // the callee's return value
    writeFrameImage(m.mem, kStackB, kMagicB, kStackB + 96);
    m.cpu.setPc(m.program.symbol("start"));
    const Cycles before = m.cpu.cycles();
    m.runToHalt();
    // Restore-in-place: CWP unchanged, caller frame present, return
    // value produced by the emulated restore's add (%i0 + 1).
    if (m.cpu.cwp() != 2)
        crw_fatal << "restore-in-place moved the CWP";
    if (m.cpu.reg(kRegL0) != kMagicB)
        crw_fatal << "caller frame not refilled in place";
    if (m.cpu.reg(kRegO0) != 42)
        crw_fatal << "restore emulation produced "
                  << m.cpu.reg(kRegO0);
    return m.cpu.cycles() - before - 1; // the restore was emulated
}

CostModel
Table2Harness::measuredCostModel()
{
    CostModel model = CostModel::paperTable2();

    const Cycles ns10 = measureNs(1, false);
    const Cycles ns11 = measureNs(1, true);
    const Cycles ns21 = measureNs(2, true);
    model.ns.perSave = ns21 - ns11;
    model.ns.perRestore = ns11 - ns10;
    model.ns.base = ns11 - model.ns.perSave - model.ns.perRestore;

    const Cycles snp00 = measureSnp(false, false);
    const Cycles snp01 = measureSnp(false, true);
    const Cycles snp10 = measureSnp(true, false);
    model.snp.base = snp00;
    model.snp.perSave = snp10 - snp00;
    model.snp.perRestore = snp01 - snp00;

    const Cycles sp00 = measureSp(0, false);
    const Cycles sp01 = measureSp(0, true);
    const Cycles sp11 = measureSp(1, true);
    model.sp.base = sp00;
    model.sp.perRestore = sp01 - sp00;
    model.sp.perSave = sp11 - sp01;

    model.transferRestore = model.snp.perRestore;
    model.transferSave = model.snp.perSave;
    const Cycles conv_ovf = measureConventionalOverflow();
    const Cycles conv_unf = measureConventionalUnderflow();
    const Cycles shr_unf = measureSharingUnderflow();
    model.overflowBase =
        conv_ovf > model.transferSave ? conv_ovf - model.transferSave
                                      : 0;
    model.underflowConventionalBase =
        conv_unf > model.transferRestore
            ? conv_unf - model.transferRestore
            : 0;
    model.underflowSharingBase =
        shr_unf > model.transferRestore
            ? shr_unf - model.transferRestore
            : 0;
    return model;
}

} // namespace kernel
} // namespace crw
