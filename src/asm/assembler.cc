#include "asm/assembler.h"

#include <algorithm>
#include <cctype>
#include <optional>
#include <sstream>

#include "common/logging.h"
#include "sparc/isa.h"

namespace crw {
namespace sparcasm {

using namespace sparc;

namespace {

// ---------------------------------------------------------------
// Lexical helpers
// ---------------------------------------------------------------

bool
isIdentChar(char c)
{
    return std::isalnum(static_cast<unsigned char>(c)) || c == '_' ||
           c == '.';
}

std::string
trim(std::string_view s)
{
    std::size_t b = 0;
    std::size_t e = s.size();
    while (b < e && std::isspace(static_cast<unsigned char>(s[b])))
        ++b;
    while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1])))
        --e;
    return std::string(s.substr(b, e - b));
}

/** Split an operand list on commas, respecting brackets/parens. */
std::vector<std::string>
splitOperands(std::string_view s)
{
    std::vector<std::string> out;
    int depth = 0;
    bool quoted = false;
    std::string cur;
    for (char c : s) {
        if (c == '"')
            quoted = !quoted;
        if (!quoted) {
            if (c == '[' || c == '(')
                ++depth;
            else if (c == ']' || c == ')')
                --depth;
        }
        if (c == ',' && depth == 0 && !quoted) {
            out.push_back(trim(cur));
            cur.clear();
        } else {
            cur.push_back(c);
        }
    }
    const std::string last = trim(cur);
    if (!last.empty())
        out.push_back(last);
    return out;
}

// ---------------------------------------------------------------
// Tables
// ---------------------------------------------------------------

struct CondEntry
{
    const char *name;
    Cond cond;
};

constexpr CondEntry kBranchConds[] = {
    {"ba", Cond::A},     {"b", Cond::A},      {"bn", Cond::N},
    {"bne", Cond::Ne},   {"bnz", Cond::Ne},   {"be", Cond::E},
    {"bz", Cond::E},     {"bg", Cond::G},     {"ble", Cond::Le},
    {"bge", Cond::Ge},   {"bl", Cond::L},     {"bgu", Cond::Gu},
    {"bleu", Cond::Leu}, {"bcc", Cond::Cc},   {"bgeu", Cond::Cc},
    {"bcs", Cond::Cs},   {"blu", Cond::Cs},   {"bpos", Cond::Pos},
    {"bneg", Cond::Neg}, {"bvc", Cond::Vc},   {"bvs", Cond::Vs},
};

constexpr CondEntry kTrapConds[] = {
    {"ta", Cond::A},     {"tn", Cond::N},     {"tne", Cond::Ne},
    {"te", Cond::E},     {"tg", Cond::G},     {"tle", Cond::Le},
    {"tge", Cond::Ge},   {"tl", Cond::L},     {"tgu", Cond::Gu},
    {"tleu", Cond::Leu}, {"tcc", Cond::Cc},   {"tcs", Cond::Cs},
    {"tpos", Cond::Pos}, {"tneg", Cond::Neg}, {"tvc", Cond::Vc},
    {"tvs", Cond::Vs},
};

struct ArithEntry
{
    const char *name;
    Op3A op3;
};

constexpr ArithEntry kArithOps[] = {
    {"add", Op3A::Add},       {"addcc", Op3A::AddCc},
    {"addx", Op3A::Addx},     {"addxcc", Op3A::AddxCc},
    {"sub", Op3A::Sub},       {"subcc", Op3A::SubCc},
    {"subx", Op3A::Subx},     {"subxcc", Op3A::SubxCc},
    {"and", Op3A::And},       {"andcc", Op3A::AndCc},
    {"andn", Op3A::Andn},     {"andncc", Op3A::AndnCc},
    {"or", Op3A::Or},         {"orcc", Op3A::OrCc},
    {"orn", Op3A::Orn},       {"orncc", Op3A::OrnCc},
    {"xor", Op3A::Xor},       {"xorcc", Op3A::XorCc},
    {"xnor", Op3A::Xnor},     {"xnorcc", Op3A::XnorCc},
    {"umul", Op3A::Umul},     {"umulcc", Op3A::UmulCc},
    {"smul", Op3A::Smul},     {"smulcc", Op3A::SmulCc},
    {"udiv", Op3A::Udiv},     {"sdiv", Op3A::Sdiv},
    {"sll", Op3A::Sll},       {"srl", Op3A::Srl},
    {"sra", Op3A::Sra},       {"save", Op3A::Save},
    {"restore", Op3A::Restore},
};

struct MemEntry
{
    const char *name;
    Op3M op3;
    bool isStore;
};

constexpr MemEntry kMemOps[] = {
    {"ld", Op3M::Ld, false},     {"ldub", Op3M::Ldub, false},
    {"ldsb", Op3M::Ldsb, false}, {"lduh", Op3M::Lduh, false},
    {"ldsh", Op3M::Ldsh, false}, {"ldd", Op3M::Ldd, false},
    {"st", Op3M::St, true},      {"stb", Op3M::Stb, true},
    {"sth", Op3M::Sth, true},    {"std", Op3M::Std, true},
};

// ---------------------------------------------------------------
// Parsed line representation
// ---------------------------------------------------------------

struct Line
{
    int number = 0;
    std::string label;
    std::string mnemonic; // lowercase, no annul suffix
    bool annul = false;
    std::vector<std::string> operands;
};

// ---------------------------------------------------------------
// The assembler proper
// ---------------------------------------------------------------

class Assembler
{
  public:
    Program
    run(const std::string &source, Addr origin)
    {
        parse(source);
        // Pass 1: assign addresses.
        pass_ = 1;
        pc_ = origin;
        sectionStart_ = origin;
        for (const Line &line : lines_)
            handleLine(line);
        // Pass 2: encode.
        pass_ = 2;
        pc_ = origin;
        sectionStart_ = origin;
        bytes_.clear();
        program_.sections.clear();
        for (const Line &line : lines_)
            handleLine(line);
        flushSection();
        return std::move(program_);
    }

  private:
    [[noreturn]] void
    fail(const std::string &msg) const
    {
        crw_fatal << "asm line " << currentLine_ << ": " << msg;
        throw FatalError(msg); // unreachable; silences no-return warn
    }

    // --- parsing ---

    void
    parse(const std::string &source)
    {
        std::istringstream in(source);
        std::string raw;
        int number = 0;
        while (std::getline(in, raw)) {
            ++number;
            if (auto bang = raw.find('!'); bang != std::string::npos)
                raw.resize(bang);
            std::string text = trim(raw);
            // A leading "label:" (possibly alone on the line).
            while (true) {
                std::size_t i = 0;
                while (i < text.size() && isIdentChar(text[i]))
                    ++i;
                if (i > 0 && i < text.size() && text[i] == ':') {
                    Line label_line;
                    label_line.number = number;
                    label_line.label = text.substr(0, i);
                    lines_.push_back(label_line);
                    text = trim(text.substr(i + 1));
                    continue;
                }
                break;
            }
            if (text.empty())
                continue;
            Line line;
            line.number = number;
            std::size_t sp = 0;
            while (sp < text.size() &&
                   !std::isspace(static_cast<unsigned char>(text[sp])))
                ++sp;
            std::string mnem = text.substr(0, sp);
            std::transform(mnem.begin(), mnem.end(), mnem.begin(),
                           [](unsigned char c) {
                               return static_cast<char>(
                                   std::tolower(c));
                           });
            if (mnem.size() > 2 &&
                mnem.compare(mnem.size() - 2, 2, ",a") == 0) {
                line.annul = true;
                mnem.resize(mnem.size() - 2);
            }
            line.mnemonic = mnem;
            line.operands = splitOperands(text.substr(sp));
            lines_.push_back(line);
        }
    }

    // --- expression evaluation ---

    std::optional<int>
    parseRegister(std::string_view tok) const
    {
        if (tok.size() < 2 || tok[0] != '%')
            return std::nullopt;
        const std::string name(tok.substr(1));
        if (name == "sp")
            return kRegSp;
        if (name == "fp")
            return kRegFp;
        if (name.size() >= 2) {
            const char cls = name[0];
            const std::string num = name.substr(1);
            bool digits = !num.empty() &&
                          std::all_of(num.begin(), num.end(),
                                      [](unsigned char c) {
                                          return std::isdigit(c);
                                      });
            if (digits) {
                const int n = std::stoi(num);
                if (cls == 'r' && n < 32)
                    return n;
                if (n < 8) {
                    switch (cls) {
                      case 'g': return n;
                      case 'o': return 8 + n;
                      case 'l': return 16 + n;
                      case 'i': return 24 + n;
                      default: break;
                    }
                }
            }
        }
        return std::nullopt;
    }

    bool
    isNumberStart(std::string_view s) const
    {
        return !s.empty() &&
               (std::isdigit(static_cast<unsigned char>(s[0])) ||
                s[0] == '-' || s[0] == '+');
    }

    /** Evaluate an integer expression (terms joined by + and -). */
    std::int64_t
    evalExpr(std::string_view expr) const
    {
        std::string s = trim(expr);
        if (s.empty())
            fail("empty expression");
        std::int64_t acc = 0;
        int sign = 1;
        std::size_t i = 0;
        bool expect_term = true;
        while (i < s.size()) {
            const char c = s[i];
            if (std::isspace(static_cast<unsigned char>(c))) {
                ++i;
                continue;
            }
            if (expect_term) {
                if (c == '-') {
                    sign = -sign;
                    ++i;
                    continue;
                }
                if (c == '+') {
                    ++i;
                    continue;
                }
                std::int64_t term;
                i = parseTerm(s, i, &term);
                acc += sign * term;
                sign = 1;
                expect_term = false;
            } else {
                if (c == '+') {
                    expect_term = true;
                    ++i;
                } else if (c == '-') {
                    sign = -1;
                    expect_term = true;
                    ++i;
                } else {
                    fail("unexpected '" + std::string(1, c) +
                         "' in expression '" + s + "'");
                }
            }
        }
        if (expect_term)
            fail("dangling operator in '" + s + "'");
        return acc;
    }

    std::size_t
    parseTerm(const std::string &s, std::size_t i,
              std::int64_t *out) const
    {
        if (s[i] == '%') {
            // %hi(expr) / %lo(expr)
            if (s.compare(i, 4, "%hi(") == 0 ||
                s.compare(i, 4, "%lo(") == 0) {
                const bool hi = s[i + 1] == 'h';
                int depth = 1;
                std::size_t j = i + 4;
                while (j < s.size() && depth > 0) {
                    if (s[j] == '(')
                        ++depth;
                    else if (s[j] == ')')
                        --depth;
                    ++j;
                }
                if (depth != 0)
                    fail("unbalanced parentheses");
                const std::int64_t inner =
                    evalExpr(s.substr(i + 4, j - i - 5));
                *out = hi ? ((inner >> 10) & 0x3FFFFF)
                          : (inner & 0x3FF);
                return j;
            }
            fail("unexpected register in expression '" + s + "'");
        }
        if (std::isdigit(static_cast<unsigned char>(s[i]))) {
            std::size_t j = i;
            int base = 10;
            if (s[i] == '0' && i + 1 < s.size() &&
                (s[i + 1] == 'x' || s[i + 1] == 'X')) {
                base = 16;
                j += 2;
            }
            std::int64_t v = 0;
            std::size_t digits = 0;
            while (j < s.size() &&
                   std::isxdigit(static_cast<unsigned char>(s[j]))) {
                const char d = static_cast<char>(
                    std::tolower(static_cast<unsigned char>(s[j])));
                const int dv =
                    d <= '9' ? d - '0' : 10 + (d - 'a');
                if (base == 10 && dv >= 10)
                    break;
                v = v * base + dv;
                ++j;
                ++digits;
            }
            if (digits == 0)
                fail("bad number in '" + s + "'");
            *out = v;
            return j;
        }
        if (isIdentChar(s[i])) {
            std::size_t j = i;
            while (j < s.size() && isIdentChar(s[j]))
                ++j;
            const std::string name = s.substr(i, j - i);
            auto it = program_.symbols.find(name);
            if (it == program_.symbols.end()) {
                if (pass_ == 1) {
                    *out = 0; // forward reference; resolved in pass 2
                    return j;
                }
                fail("undefined symbol '" + name + "'");
            }
            *out = it->second;
            return j;
        }
        fail("cannot parse term at '" + s.substr(i) + "'");
    }

    /** Does the expression reference only literal numbers? */
    bool
    isPureNumber(std::string_view expr) const
    {
        for (char c : expr) {
            if (std::isalpha(static_cast<unsigned char>(c)) ||
                c == '_' || c == '.')
                return false;
        }
        return !trim(expr).empty();
    }

    // --- emission ---

    void
    flushSection()
    {
        if (pass_ != 2 || bytes_.empty())
            return;
        program_.sections.push_back(
            {sectionStart_, std::move(bytes_)});
        bytes_.clear();
    }

    void
    emitByte(std::uint8_t b)
    {
        if (pass_ == 2)
            bytes_.push_back(b);
        ++pc_;
    }

    void
    emitWord(Word w)
    {
        if (pc_ & 3)
            fail("instruction/word at unaligned address");
        emitByte(static_cast<std::uint8_t>(w >> 24));
        emitByte(static_cast<std::uint8_t>(w >> 16));
        emitByte(static_cast<std::uint8_t>(w >> 8));
        emitByte(static_cast<std::uint8_t>(w));
    }

    std::int32_t
    checkSimm13(std::int64_t v) const
    {
        if (v < -4096 || v > 4095)
            fail("immediate " + std::to_string(v) +
                 " does not fit simm13");
        return static_cast<std::int32_t>(v);
    }

    /** reg_or_imm operand: returns (i, low13). */
    std::pair<bool, std::uint32_t>
    regOrImm(const std::string &tok) const
    {
        if (auto r = parseRegister(tok))
            return {false, static_cast<std::uint32_t>(*r)};
        const std::int32_t imm = checkSimm13(evalExpr(tok));
        return {true, static_cast<std::uint32_t>(imm) & 0x1FFF};
    }

    int
    mustRegister(const std::string &tok) const
    {
        auto r = parseRegister(tok);
        if (!r)
            fail("expected register, got '" + tok + "'");
        return *r;
    }

    /** Parse "reg", "reg+reg", "reg+imm", "reg-imm" or "imm". */
    void
    parseAddress(const std::string &text, int *rs1, bool *i,
                 std::uint32_t *low13) const
    {
        const std::string s = trim(text);
        // Find a top-level + or - separating register and the rest.
        int depth = 0;
        for (std::size_t k = 1; k < s.size(); ++k) {
            const char c = s[k];
            if (c == '(')
                ++depth;
            else if (c == ')')
                --depth;
            else if ((c == '+' || c == '-') && depth == 0 &&
                     s[0] == '%') {
                *rs1 = mustRegister(trim(s.substr(0, k)));
                const std::string rest =
                    trim(s.substr(c == '+' ? k + 1 : k));
                if (auto r2 = parseRegister(rest)) {
                    if (c == '-')
                        fail("cannot subtract a register");
                    *i = false;
                    *low13 = static_cast<std::uint32_t>(*r2);
                    return;
                }
                *i = true;
                *low13 = static_cast<std::uint32_t>(
                             checkSimm13(evalExpr(rest))) &
                         0x1FFF;
                return;
            }
        }
        if (auto r = parseRegister(s)) {
            *rs1 = *r;
            *i = true;
            *low13 = 0;
            return;
        }
        *rs1 = kRegG0;
        *i = true;
        *low13 =
            static_cast<std::uint32_t>(checkSimm13(evalExpr(s))) &
            0x1FFF;
    }

    /** [addr] memory operand. */
    void
    parseMemOperand(const std::string &tok, int *rs1, bool *i,
                    std::uint32_t *low13) const
    {
        const std::string s = trim(tok);
        if (s.size() < 2 || s.front() != '[' || s.back() != ']')
            fail("expected [address], got '" + tok + "'");
        parseAddress(s.substr(1, s.size() - 2), rs1, i, low13);
    }

    // --- per-line handling ---

    void
    defineLabel(const std::string &name)
    {
        if (pass_ == 1) {
            if (program_.symbols.count(name))
                fail("duplicate label '" + name + "'");
            program_.symbols[name] = pc_;
        }
    }

    void
    handleLine(const Line &line)
    {
        currentLine_ = line.number;
        if (!line.label.empty()) {
            defineLabel(line.label);
            return;
        }
        if (line.mnemonic.empty())
            return;
        if (line.mnemonic[0] == '.') {
            handleDirective(line);
            return;
        }
        handleInstruction(line);
    }

    void
    handleDirective(const Line &line)
    {
        const std::string &d = line.mnemonic;
        const auto &ops = line.operands;
        if (d == ".org") {
            if (ops.size() != 1)
                fail(".org needs one operand");
            const Addr target =
                static_cast<Addr>(evalExpr(ops[0]));
            if (target < pc_)
                fail(".org cannot move backwards");
            flushSection();
            pc_ = target;
            sectionStart_ = target;
        } else if (d == ".word") {
            for (const auto &op : ops)
                emitWord(static_cast<Word>(evalExpr(op)));
        } else if (d == ".half") {
            for (const auto &op : ops) {
                const auto v =
                    static_cast<std::uint16_t>(evalExpr(op));
                emitByte(static_cast<std::uint8_t>(v >> 8));
                emitByte(static_cast<std::uint8_t>(v));
            }
        } else if (d == ".byte") {
            for (const auto &op : ops)
                emitByte(static_cast<std::uint8_t>(evalExpr(op)));
        } else if (d == ".ascii" || d == ".asciz") {
            if (ops.size() != 1 || ops[0].size() < 2 ||
                ops[0].front() != '"' || ops[0].back() != '"')
                fail(d + " needs one quoted string");
            const std::string body =
                ops[0].substr(1, ops[0].size() - 2);
            for (std::size_t k = 0; k < body.size(); ++k) {
                char c = body[k];
                if (c == '\\' && k + 1 < body.size()) {
                    ++k;
                    switch (body[k]) {
                      case 'n': c = '\n'; break;
                      case 't': c = '\t'; break;
                      case '0': c = '\0'; break;
                      default:  c = body[k]; break;
                    }
                }
                emitByte(static_cast<std::uint8_t>(c));
            }
            if (d == ".asciz")
                emitByte(0);
        } else if (d == ".align") {
            const std::int64_t n =
                ops.empty() ? 4 : evalExpr(ops[0]);
            if (n <= 0 || (n & (n - 1)))
                fail(".align needs a power of two");
            while (pc_ % static_cast<Addr>(n))
                emitByte(0);
        } else if (d == ".skip") {
            if (ops.size() != 1)
                fail(".skip needs one operand");
            const std::int64_t n = evalExpr(ops[0]);
            for (std::int64_t k = 0; k < n; ++k)
                emitByte(0);
        } else if (d == ".set") {
            if (ops.size() != 2)
                fail(".set needs name, value");
            if (pass_ == 1)
                program_.symbols[ops[0]] =
                    static_cast<Addr>(evalExpr(ops[1]));
        } else if (d == ".global" || d == ".text" || d == ".data") {
            // accepted and ignored
        } else {
            fail("unknown directive " + d);
        }
    }

    void
    emitFmt3Arith(Op3A op3, const std::vector<std::string> &ops)
    {
        if (ops.size() != 3)
            fail("expected 3 operands");
        const int rs1 = mustRegister(ops[0]);
        const auto [i, low13] = regOrImm(ops[1]);
        const int rd = mustRegister(ops[2]);
        emitWord(encodeFmt3(Op::Arith, rd,
                            static_cast<std::uint32_t>(op3), rs1, i,
                            low13));
    }

    void
    handleInstruction(const Line &line)
    {
        const std::string &m = line.mnemonic;
        const auto &ops = line.operands;

        // --- branches ---
        for (const auto &e : kBranchConds) {
            if (m == e.name) {
                if (ops.size() != 1)
                    fail("branch needs one target");
                const std::int64_t target = evalExpr(ops[0]);
                const std::int64_t disp =
                    (target - static_cast<std::int64_t>(pc_)) / 4;
                if (pass_ == 2 &&
                    (disp < -(1 << 21) || disp >= (1 << 21)))
                    fail("branch displacement out of range");
                if (pass_ == 2 && ((target - pc_) & 3))
                    fail("branch target not word-aligned");
                emitWord(encodeBicc(e.cond, line.annul,
                                    static_cast<std::int32_t>(disp)));
                return;
            }
        }

        // --- trap instructions ---
        for (const auto &e : kTrapConds) {
            if (m == e.name) {
                if (ops.size() != 1)
                    fail("trap needs one operand");
                int rs1 = kRegG0;
                bool i = true;
                std::uint32_t low13 = 0;
                parseAddress(ops[0], &rs1, &i, &low13);
                emitWord(encodeFmt3(
                    Op::Arith, static_cast<int>(e.cond),
                    static_cast<std::uint32_t>(Op3A::Ticc), rs1, i,
                    low13));
                return;
            }
        }

        // --- memory ---
        for (const auto &e : kMemOps) {
            if (m == e.name) {
                if (ops.size() != 2)
                    fail("memory op needs 2 operands");
                int rs1 = 0;
                bool i = false;
                std::uint32_t low13 = 0;
                int rd;
                if (e.isStore) {
                    rd = mustRegister(ops[0]);
                    parseMemOperand(ops[1], &rs1, &i, &low13);
                } else {
                    parseMemOperand(ops[0], &rs1, &i, &low13);
                    rd = mustRegister(ops[1]);
                }
                emitWord(encodeFmt3(Op::Mem, rd,
                                    static_cast<std::uint32_t>(e.op3),
                                    rs1, i, low13));
                return;
            }
        }

        // --- plain arithmetic (3 operands) ---
        for (const auto &e : kArithOps) {
            if (m == e.name) {
                if (ops.empty() &&
                    (e.op3 == Op3A::Save || e.op3 == Op3A::Restore)) {
                    emitWord(encodeArithReg(e.op3, 0, 0, 0));
                    return;
                }
                emitFmt3Arith(e.op3, ops);
                return;
            }
        }

        // --- everything else ---
        if (m == "sethi") {
            if (ops.size() != 2)
                fail("sethi needs 2 operands");
            const auto v =
                static_cast<std::uint32_t>(evalExpr(ops[0]));
            emitWord(encodeSethi(mustRegister(ops[1]), v));
            return;
        }
        if (m == "call") {
            if (ops.size() != 1)
                fail("call needs one target");
            const std::int64_t target = evalExpr(ops[0]);
            const std::int64_t disp =
                (target - static_cast<std::int64_t>(pc_)) / 4;
            emitWord(encodeCall(static_cast<std::int32_t>(disp)));
            return;
        }
        if (m == "jmpl") {
            if (ops.size() != 2)
                fail("jmpl needs address, rd");
            int rs1;
            bool i;
            std::uint32_t low13;
            parseAddress(ops[0], &rs1, &i, &low13);
            emitWord(encodeFmt3(Op::Arith, mustRegister(ops[1]),
                                static_cast<std::uint32_t>(Op3A::Jmpl),
                                rs1, i, low13));
            return;
        }
        if (m == "jmp") {
            if (ops.size() != 1)
                fail("jmp needs an address");
            int rs1;
            bool i;
            std::uint32_t low13;
            parseAddress(ops[0], &rs1, &i, &low13);
            emitWord(encodeFmt3(Op::Arith, kRegG0,
                                static_cast<std::uint32_t>(Op3A::Jmpl),
                                rs1, i, low13));
            return;
        }
        if (m == "rett") {
            if (ops.size() != 1)
                fail("rett needs an address");
            int rs1;
            bool i;
            std::uint32_t low13;
            parseAddress(ops[0], &rs1, &i, &low13);
            emitWord(encodeFmt3(Op::Arith, 0,
                                static_cast<std::uint32_t>(Op3A::Rett),
                                rs1, i, low13));
            return;
        }
        if (m == "rd") {
            if (ops.size() != 2)
                fail("rd needs %statereg, rd");
            Op3A op3;
            if (ops[0] == "%psr")
                op3 = Op3A::RdPsr;
            else if (ops[0] == "%wim")
                op3 = Op3A::RdWim;
            else if (ops[0] == "%tbr")
                op3 = Op3A::RdTbr;
            else if (ops[0] == "%y")
                op3 = Op3A::RdY;
            else
                fail("unknown state register " + ops[0]);
            emitWord(encodeFmt3(Op::Arith, mustRegister(ops[1]),
                                static_cast<std::uint32_t>(op3), 0,
                                false, 0));
            return;
        }
        if (m == "wr") {
            if (ops.size() != 3)
                fail("wr needs rs1, reg_or_imm, %statereg");
            Op3A op3;
            if (ops[2] == "%psr")
                op3 = Op3A::WrPsr;
            else if (ops[2] == "%wim")
                op3 = Op3A::WrWim;
            else if (ops[2] == "%tbr")
                op3 = Op3A::WrTbr;
            else if (ops[2] == "%y")
                op3 = Op3A::WrY;
            else
                fail("unknown state register " + ops[2]);
            const int rs1 = mustRegister(ops[0]);
            const auto [i, low13] = regOrImm(ops[1]);
            emitWord(encodeFmt3(Op::Arith, 0,
                                static_cast<std::uint32_t>(op3), rs1,
                                i, low13));
            return;
        }

        // --- synthetic instructions ---
        if (m == "nop") {
            emitWord(encodeSethi(0, 0));
            return;
        }
        if (m == "mov") {
            if (ops.size() != 2)
                fail("mov needs 2 operands");
            // State-register moves.
            if (ops[1] == "%psr" || ops[1] == "%wim" ||
                ops[1] == "%tbr" || ops[1] == "%y") {
                handleInstruction(
                    {line.number, "", "wr", false,
                     {"%g0", ops[0], ops[1]}});
                return;
            }
            if (ops[0] == "%psr" || ops[0] == "%wim" ||
                ops[0] == "%tbr" || ops[0] == "%y") {
                handleInstruction({line.number, "", "rd", false,
                                   {ops[0], ops[1]}});
                return;
            }
            emitFmt3Arith(Op3A::Or, {"%g0", ops[0], ops[1]});
            return;
        }
        if (m == "set") {
            if (ops.size() != 2)
                fail("set needs value, rd");
            const int rd = mustRegister(ops[1]);
            if (isPureNumber(ops[0])) {
                const std::int64_t v = evalExpr(ops[0]);
                if (v >= -4096 && v <= 4095) {
                    emitWord(encodeArithImm(
                        Op3A::Or, rd, kRegG0,
                        static_cast<std::int32_t>(v)));
                    return;
                }
            }
            const auto v =
                static_cast<std::uint32_t>(evalExpr(ops[0]));
            emitWord(encodeSethi(rd, v >> 10));
            emitWord(encodeArithImm(
                Op3A::Or, rd, rd,
                static_cast<std::int32_t>(v & 0x3FF)));
            return;
        }
        if (m == "cmp") {
            if (ops.size() != 2)
                fail("cmp needs 2 operands");
            emitFmt3Arith(Op3A::SubCc, {ops[0], ops[1], "%g0"});
            return;
        }
        if (m == "tst") {
            if (ops.size() != 1)
                fail("tst needs 1 operand");
            emitFmt3Arith(Op3A::OrCc, {"%g0", ops[0], "%g0"});
            return;
        }
        if (m == "btst") {
            if (ops.size() != 2)
                fail("btst needs mask, reg");
            emitFmt3Arith(Op3A::AndCc, {ops[1], ops[0], "%g0"});
            return;
        }
        if (m == "clr") {
            if (ops.size() != 1)
                fail("clr needs 1 operand");
            if (!ops[0].empty() && ops[0][0] == '[') {
                handleInstruction({line.number, "", "st", false,
                                   {"%g0", ops[0]}});
                return;
            }
            emitFmt3Arith(Op3A::Or, {"%g0", "%g0", ops[0]});
            return;
        }
        if (m == "inc" || m == "dec") {
            const Op3A op3 = (m == "inc") ? Op3A::Add : Op3A::Sub;
            if (ops.size() == 1) {
                emitFmt3Arith(op3, {ops[0], "1", ops[0]});
                return;
            }
            if (ops.size() == 2) {
                emitFmt3Arith(op3, {ops[1], ops[0], ops[1]});
                return;
            }
            fail(m + " needs 1 or 2 operands");
        }
        if (m == "neg") {
            if (ops.size() != 1)
                fail("neg needs 1 operand");
            emitFmt3Arith(Op3A::Sub, {"%g0", ops[0], ops[0]});
            return;
        }
        if (m == "not") {
            if (ops.size() != 1)
                fail("not needs 1 operand");
            emitFmt3Arith(Op3A::Xnor, {ops[0], "%g0", ops[0]});
            return;
        }
        if (m == "ret") {
            emitWord(encodeArithImm(Op3A::Jmpl, kRegG0, kRegI7, 8));
            return;
        }
        if (m == "retl") {
            emitWord(encodeArithImm(Op3A::Jmpl, kRegG0, kRegO7, 8));
            return;
        }

        fail("unknown mnemonic '" + m + "'");
    }

    std::vector<Line> lines_;
    Program program_;
    int pass_ = 0;
    int currentLine_ = 0;
    Addr pc_ = 0;
    Addr sectionStart_ = 0;
    std::vector<std::uint8_t> bytes_;
};

} // namespace

Addr
Program::symbol(const std::string &name) const
{
    auto it = symbols.find(name);
    if (it == symbols.end())
        crw_fatal << "undefined symbol '" << name << "'";
    return it->second;
}

void
Program::loadInto(sparc::Memory &mem) const
{
    for (const Section &s : sections)
        mem.loadBlock(s.base, s.bytes.data(), s.bytes.size());
}

std::size_t
Program::sizeBytes() const
{
    std::size_t n = 0;
    for (const Section &s : sections)
        n += s.bytes.size();
    return n;
}

Program
assemble(const std::string &source, Addr origin)
{
    Assembler assembler;
    return assembler.run(source, origin);
}

} // namespace sparcasm
} // namespace crw
