/**
 * @file
 * A two-pass assembler for the SPARC V8 integer subset.
 *
 * Exists so the window-management kernel (src/kernel) can be written
 * as real SPARC assembly — the same form the paper's modified trap
 * handlers took — and executed on the crw SPARC core.
 *
 * Supported syntax (SunOS-style):
 *  - labels (`name:`), `!` comments;
 *  - registers %g0-7/%o0-7/%l0-7/%i0-7/%r0-31/%sp/%fp, state
 *    registers %psr/%wim/%tbr/%y;
 *  - all implemented instructions plus the common synthetics (nop,
 *    mov, set, cmp, tst, clr, ret, retl, jmp, b, inc, dec, neg, not,
 *    ta/te/..., btst);
 *  - operands: registers, immediates, label expressions with + and -,
 *    %hi()/%lo(), memory operands [reg], [reg+reg], [reg+/-imm],
 *    [imm];
 *  - directives .org .word .half .byte .ascii .asciz .align .skip
 *    .set .global (ignored) .text (ignored) .data (ignored);
 *  - branch annul suffix `,a`.
 *
 * Errors throw FatalError with the line number.
 */

#ifndef CRW_ASM_ASSEMBLER_H_
#define CRW_ASM_ASSEMBLER_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/types.h"
#include "sparc/memory.h"

namespace crw {
namespace sparcasm {

/** The output of an assembly run (a plain result aggregate). */
struct Program
{
    /** Non-contiguous output: (address, bytes) chunks. */
    struct Section
    {
        Addr base;
        std::vector<std::uint8_t> bytes;
    };

    std::vector<Section> sections;
    std::map<std::string, Addr> symbols;

    /** Address of @p symbol; fatal if undefined. */
    Addr symbol(const std::string &name) const;
    bool hasSymbol(const std::string &name) const
    {
        return symbols.count(name) != 0;
    }

    /** Copy every section into simulated memory. */
    void loadInto(sparc::Memory &mem) const;

    /** Total emitted bytes (across sections). */
    std::size_t sizeBytes() const;
};

/**
 * Assemble @p source starting at @p origin.
 */
Program assemble(const std::string &source, Addr origin = 0);

} // namespace sparcasm
} // namespace crw

#endif // CRW_ASM_ASSEMBLER_H_
