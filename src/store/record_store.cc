#include "store/record_store.h"

#include <cstring>

#include "common/byteio.h"

namespace crw {
namespace store {

namespace {

constexpr char kStoreMagic[8] = {'C', 'R', 'W', 'S', 'T', 'O', 'R', 'E'};
constexpr std::size_t kHeaderChecksumOff = 48;
constexpr std::size_t kHeaderChecksumSpan = 56;
constexpr std::size_t kSeqOff = 64;
constexpr std::size_t kDataTailOff = 72;
constexpr std::size_t kEntryCountOff = 80;
constexpr std::size_t kPutFailuresOff = 88;
constexpr std::size_t kHeaderBytes = 4096;
constexpr std::uint64_t kTombstone = ~0ull;
/** u32 keyLen + u32 blobLen + u64 checksum. */
constexpr std::uint64_t kRecordOverhead = 16;

std::uint64_t
alignUp8(std::uint64_t n)
{
    return (n + 7) & ~7ull;
}

bool
isPow2(std::uint64_t n)
{
    return n != 0 && (n & (n - 1)) == 0;
}

/**
 * Atomic accessors over the shared mapping. gcc builtins rather than
 * std::atomic_ref: the words live in an mmap'd file, not in objects
 * this process constructed, and the builtins make no lifetime claims.
 */
std::uint64_t
loadAcquire(const std::uint8_t *p)
{
    return __atomic_load_n(reinterpret_cast<const std::uint64_t *>(p),
                           __ATOMIC_ACQUIRE);
}

std::uint64_t
loadRelaxed(const std::uint8_t *p)
{
    return __atomic_load_n(reinterpret_cast<const std::uint64_t *>(p),
                           __ATOMIC_RELAXED);
}

void
storeRelease(std::uint8_t *p, std::uint64_t v)
{
    __atomic_store_n(reinterpret_cast<std::uint64_t *>(p), v,
                     __ATOMIC_RELEASE);
}

void
storeRelaxed(std::uint8_t *p, std::uint64_t v)
{
    __atomic_store_n(reinterpret_cast<std::uint64_t *>(p), v,
                     __ATOMIC_RELAXED);
}

std::uint32_t
readU32(const std::uint8_t *p)
{
    std::uint32_t v;
    std::memcpy(&v, p, 4);
    return v;
}

std::uint64_t
readU64(const std::uint8_t *p)
{
    std::uint64_t v;
    std::memcpy(&v, p, 8);
    return v;
}

void
writeU32(std::uint8_t *p, std::uint32_t v)
{
    std::memcpy(p, &v, 4);
}

void
writeU64(std::uint8_t *p, std::uint64_t v)
{
    std::memcpy(p, &v, 8);
}

} // namespace

bool
RecordStore::initialize(std::uint32_t app_version,
                        std::size_t index_slots,
                        std::size_t data_capacity)
{
    if (!isPow2(index_slots))
        return false;
    std::uint8_t *b = base();
    const std::uint64_t index_off = kHeaderBytes;
    const std::uint64_t data_off = index_off + index_slots * 8;
    if (data_off + data_capacity > mapping_.size())
        return false;

    // Kill the magic first so a concurrent reader rejects the store
    // for the whole rewrite, then rebuild and restore it last.
    std::memset(b, 0, kHeaderBytes);
    std::memset(b + index_off, 0, index_slots * 8);

    writeU32(b + 8, kRecordStoreFormatVersion);
    writeU32(b + 12, app_version);
    writeU64(b + 16, index_off);
    writeU64(b + 24, index_slots);
    writeU64(b + 32, data_off);
    writeU64(b + 40, data_capacity);
    // Checksum the header as a reader will see it — magic included,
    // checksum field zero — but only place the magic itself after the
    // fence, so a torn initialize can never validate.
    std::uint8_t header[kHeaderChecksumSpan];
    std::memcpy(header, b, kHeaderChecksumSpan);
    std::memcpy(header, kStoreMagic, 8);
    writeU64(b + kHeaderChecksumOff,
             fnv1a64(header, kHeaderChecksumSpan));
    __atomic_thread_fence(__ATOMIC_RELEASE);
    std::memcpy(b, kStoreMagic, 8);

    indexOffset_ = index_off;
    indexSlots_ = index_slots;
    dataOffset_ = data_off;
    dataCapacity_ = data_capacity;
    appVersion_ = app_version;
    return true;
}

bool
RecordStore::validateHeader(std::uint32_t app_version)
{
    const std::uint8_t *b = base();
    if (!mapping_.valid() || mapping_.size() < kHeaderBytes)
        return false;
    if (std::memcmp(b, kStoreMagic, 8) != 0)
        return false;
    if (readU32(b + 8) != kRecordStoreFormatVersion)
        return false;
    if (readU32(b + 12) != app_version)
        return false;
    std::uint8_t header[kHeaderChecksumSpan];
    std::memcpy(header, b, kHeaderChecksumSpan);
    std::memset(header + kHeaderChecksumOff, 0, 8);
    if (fnv1a64(header, kHeaderChecksumSpan) !=
        readU64(b + kHeaderChecksumOff))
        return false;

    const std::uint64_t index_off = readU64(b + 16);
    const std::uint64_t slots = readU64(b + 24);
    const std::uint64_t data_off = readU64(b + 32);
    const std::uint64_t capacity = readU64(b + 40);
    if (index_off < kHeaderBytes || !isPow2(slots) ||
        data_off != index_off + slots * 8 ||
        data_off + capacity > mapping_.size())
        return false;

    indexOffset_ = index_off;
    indexSlots_ = slots;
    dataOffset_ = data_off;
    dataCapacity_ = capacity;
    appVersion_ = app_version;
    return true;
}

bool
RecordStore::open(const std::string &path, std::uint32_t app_version,
                  std::size_t index_slots, std::size_t data_capacity,
                  std::string *error)
{
    close();
    const std::size_t total =
        kHeaderBytes + index_slots * 8 + data_capacity;

    Mapping writable;
    if (Mapping::openFile(path, total, /*writable=*/true, writable,
                          error) &&
        writable.tryLockExclusive()) {
        mapping_ = std::move(writable);
        if (!validateHeader(app_version) &&
            !initialize(app_version, index_slots, data_capacity)) {
            close();
            if (error)
                *error = "record store: cannot format " + path;
            return false;
        }
        mode_ = Mode::Writer;
        return true;
    }
    writable.close();

    // Lost the writer election (or the file is unwritable): attach
    // read-only against whatever the owning writer has published.
    Mapping readonly;
    if (!Mapping::openFile(path, 0, /*writable=*/false, readonly,
                           error))
        return false;
    mapping_ = std::move(readonly);
    if (!validateHeader(app_version)) {
        close();
        if (error)
            *error = "record store: " + path +
                     " is not a valid store (writer still "
                     "initializing, or stale format)";
        return false;
    }
    mode_ = Mode::Reader;
    return true;
}

bool
RecordStore::openAnonymous(std::uint32_t app_version,
                           std::size_t index_slots,
                           std::size_t data_capacity)
{
    close();
    const std::size_t total =
        kHeaderBytes + index_slots * 8 + data_capacity;
    if (!Mapping::createAnonymous(total, mapping_))
        return false;
    if (!initialize(app_version, index_slots, data_capacity)) {
        close();
        return false;
    }
    mode_ = Mode::Writer;
    return true;
}

void
RecordStore::close()
{
    mapping_.close();
    mode_ = Mode::Invalid;
    indexOffset_ = indexSlots_ = dataOffset_ = dataCapacity_ = 0;
    appVersion_ = 0;
}

RecordStore::FindResult
RecordStore::find(const std::string &key,
                  std::vector<std::uint8_t> &blob,
                  std::uint64_t *file_offset) const
{
    if (!valid())
        return FindResult::Miss;
    const std::uint8_t *b = base();
    const std::uint64_t mask = indexSlots_ - 1;
    std::uint64_t h = fnv1a64(key);
    for (std::uint64_t probe = 0; probe < indexSlots_; ++probe) {
        const std::uint64_t slot_off =
            indexOffset_ + ((h + probe) & mask) * 8;
        const std::uint64_t slot = loadAcquire(b + slot_off);
        if (slot == 0)
            return FindResult::Miss;
        if (slot == kTombstone)
            continue;
        const std::uint64_t rel = slot - 1;

        // Validate the record in place; the publication protocol
        // guarantees a published slot points at fully written bytes,
        // so any failure here is file damage, not a race.
        if (rel + kRecordOverhead > dataCapacity_)
            return FindResult::Corrupt;
        const std::uint8_t *rec = b + dataOffset_ + rel;
        const std::uint64_t room = dataCapacity_ - rel;
        const std::uint32_t key_len = readU32(rec);
        if (kRecordOverhead + key_len > room)
            return FindResult::Corrupt;
        const std::uint32_t blob_len = readU32(rec + 4 + key_len);
        if (kRecordOverhead + key_len + blob_len > room)
            return FindResult::Corrupt;
        const std::uint64_t body = 8 + key_len + blob_len;
        if (hashArena64(rec, body) != readU64(rec + body))
            return FindResult::Corrupt;
        if (key_len != key.size() ||
            std::memcmp(rec + 4, key.data(), key_len) != 0)
            continue; // honest index collision: probe on
        blob.assign(rec + 8 + key_len, rec + 8 + key_len + blob_len);
        if (file_offset)
            *file_offset = dataOffset_ + rel;
        return FindResult::Hit;
    }
    return FindResult::Miss;
}

bool
RecordStore::put(const std::string &key,
                 const std::vector<std::uint8_t> &blob)
{
    if (!writable())
        return false;
    std::uint8_t *b = base();
    const std::uint64_t record_bytes =
        alignUp8(kRecordOverhead + key.size() + blob.size());
    const std::uint64_t tail = loadRelaxed(b + kDataTailOff);
    if (tail + record_bytes > dataCapacity_) {
        storeRelaxed(b + kPutFailuresOff,
                     loadRelaxed(b + kPutFailuresOff) + 1);
        return false;
    }

    // Find the slot first (existing key, else first reusable slot).
    const std::uint64_t mask = indexSlots_ - 1;
    const std::uint64_t h = fnv1a64(key);
    std::uint64_t slot_off = 0;
    bool found = false;
    bool replacing = false;
    for (std::uint64_t probe = 0; probe < indexSlots_; ++probe) {
        const std::uint64_t off = indexOffset_ + ((h + probe) & mask) * 8;
        const std::uint64_t slot = loadRelaxed(b + off);
        if (slot == 0 || slot == kTombstone) {
            if (!found) {
                slot_off = off;
                found = true;
            }
            if (slot == 0)
                break; // end of this key's probe chain
            continue;
        }
        const std::uint64_t rel = slot - 1;
        if (rel + kRecordOverhead <= dataCapacity_) {
            const std::uint8_t *rec = b + dataOffset_ + rel;
            const std::uint32_t key_len = readU32(rec);
            if (key_len == key.size() &&
                kRecordOverhead + key_len <= dataCapacity_ - rel &&
                std::memcmp(rec + 4, key.data(), key_len) == 0) {
                slot_off = off;
                found = true;
                replacing = true;
                break;
            }
        }
    }
    if (!found) {
        storeRelaxed(b + kPutFailuresOff,
                     loadRelaxed(b + kPutFailuresOff) + 1);
        return false; // index full
    }

    // Write and checksum the record, THEN publish the slot: the
    // single release store is the commit point a reader's acquire
    // load pairs with.
    std::uint8_t *rec = b + dataOffset_ + tail;
    writeU32(rec, static_cast<std::uint32_t>(key.size()));
    std::memcpy(rec + 4, key.data(), key.size());
    writeU32(rec + 4 + key.size(),
             static_cast<std::uint32_t>(blob.size()));
    std::memcpy(rec + 8 + key.size(), blob.data(), blob.size());
    const std::uint64_t body = 8 + key.size() + blob.size();
    writeU64(rec + body, hashArena64(rec, body));

    const std::uint64_t seq = loadRelaxed(b + kSeqOff);
    storeRelease(b + kSeqOff, seq + 1); // odd: stats update in flight
    storeRelease(b + slot_off, tail + 1);
    storeRelaxed(b + kDataTailOff, tail + record_bytes);
    if (!replacing)
        storeRelaxed(b + kEntryCountOff,
                     loadRelaxed(b + kEntryCountOff) + 1);
    storeRelease(b + kSeqOff, seq + 2);
    return true;
}

bool
RecordStore::erase(const std::string &key)
{
    if (!writable())
        return false;
    std::uint8_t *b = base();
    const std::uint64_t mask = indexSlots_ - 1;
    const std::uint64_t h = fnv1a64(key);
    for (std::uint64_t probe = 0; probe < indexSlots_; ++probe) {
        const std::uint64_t off = indexOffset_ + ((h + probe) & mask) * 8;
        const std::uint64_t slot = loadRelaxed(b + off);
        if (slot == 0)
            return false;
        if (slot == kTombstone)
            continue;
        const std::uint64_t rel = slot - 1;
        if (rel + kRecordOverhead > dataCapacity_)
            continue;
        const std::uint8_t *rec = b + dataOffset_ + rel;
        const std::uint32_t key_len = readU32(rec);
        if (key_len != key.size() ||
            kRecordOverhead + key_len > dataCapacity_ - rel ||
            std::memcmp(rec + 4, key.data(), key_len) != 0)
            continue;
        const std::uint64_t seq = loadRelaxed(b + kSeqOff);
        storeRelease(b + kSeqOff, seq + 1);
        storeRelease(b + off, kTombstone);
        storeRelaxed(b + kEntryCountOff,
                     loadRelaxed(b + kEntryCountOff) - 1);
        storeRelease(b + kSeqOff, seq + 2);
        return true;
    }
    return false;
}

bool
RecordStore::clear()
{
    if (!writable())
        return false;
    std::uint8_t *b = base();
    const std::uint64_t seq = loadRelaxed(b + kSeqOff);
    storeRelease(b + kSeqOff, seq + 1);
    for (std::uint64_t i = 0; i < indexSlots_; ++i)
        storeRelaxed(b + indexOffset_ + i * 8, 0);
    storeRelaxed(b + kDataTailOff, 0);
    storeRelaxed(b + kEntryCountOff, 0);
    storeRelease(b + kSeqOff, seq + 2);
    return true;
}

void
RecordStore::forEachRecord(
    const std::function<void(const std::string &, const std::uint8_t *,
                             std::size_t)> &fn) const
{
    if (!valid())
        return;
    const std::uint8_t *b = base();
    for (std::uint64_t i = 0; i < indexSlots_; ++i) {
        const std::uint64_t slot =
            loadAcquire(b + indexOffset_ + i * 8);
        if (slot == 0 || slot == kTombstone)
            continue;
        const std::uint64_t rel = slot - 1;
        if (rel + kRecordOverhead > dataCapacity_)
            continue;
        const std::uint8_t *rec = b + dataOffset_ + rel;
        const std::uint64_t room = dataCapacity_ - rel;
        const std::uint32_t key_len = readU32(rec);
        if (kRecordOverhead + key_len > room)
            continue;
        const std::uint32_t blob_len = readU32(rec + 4 + key_len);
        if (kRecordOverhead + key_len + blob_len > room)
            continue;
        const std::uint64_t body = 8 + key_len + blob_len;
        if (hashArena64(rec, body) != readU64(rec + body))
            continue;
        const std::string key(reinterpret_cast<const char *>(rec + 4),
                              key_len);
        fn(key, rec + 8 + key_len, blob_len);
    }
}

RecordStore::Stats
RecordStore::stats() const
{
    Stats s;
    if (!valid())
        return s;
    const std::uint8_t *b = base();
    s.dataCapacity = dataCapacity_;
    s.indexSlots = indexSlots_;
    s.storeVersion = kRecordStoreFormatVersion;
    s.appVersion = appVersion_;
    for (;;) {
        const std::uint64_t s1 = loadAcquire(b + kSeqOff);
        if (s1 & 1)
            continue;
        s.entries = loadRelaxed(b + kEntryCountOff);
        s.dataBytes = loadRelaxed(b + kDataTailOff);
        s.putFailures = loadRelaxed(b + kPutFailuresOff);
        __atomic_thread_fence(__ATOMIC_ACQUIRE);
        if (loadRelaxed(b + kSeqOff) == s1)
            return s;
    }
}

} // namespace store
} // namespace crw
