/**
 * @file
 * RecordStore: a single-writer, many-reader keyed blob store over one
 * mmap-shared file — the substrate of the arena-backed result cache
 * (bench/result_cache.cc) and the shape the future sweep daemon's
 * readers attach to (DESIGN.md §13).
 *
 * Layout (one file, preallocated sparse):
 *
 *   off   0  magic[8]          "CRWSTORE"
 *   off   8  u32 storeVersion  kRecordStoreFormatVersion
 *   off  12  u32 appVersion    caller-defined (record payload format)
 *   off  16  u64 indexOffset
 *   off  24  u64 indexSlots    power of two
 *   off  32  u64 dataOffset
 *   off  40  u64 dataCapacity
 *   off  48  u64 headerChecksum  FNV-1a over [0, 56) with this zeroed
 *   --- mutable region (atomics; never checksummed) ---
 *   off  64  u64 seq           stats seqlock (odd while updating)
 *   off  72  u64 dataTail      writer bump pointer into the data region
 *   off  80  u64 entryCount
 *   off  88  u64 putFailures   puts refused because the data region filled
 *   off indexOffset  indexSlots × u64 slot
 *   off dataOffset   append-only records
 *
 * A slot is one 64-bit word — the whole publication protocol of the
 * (1,N) atomic-register exemplar collapsed to a single-word register:
 * 0 = empty, ~0 = tombstone, otherwise 1 + the record's offset into
 * the data region. The writer fully writes and checksums the record
 * bytes, then publishes the slot with one release store; a reader's
 * acquire load therefore either misses or sees a complete record.
 * Keys are verified inside the record itself, so an index collision
 * (or a stale slot after clear()) degrades to a miss, never to an
 * aliased result. Multi-field stats travel under a seqlock.
 *
 * Record encoding at its slot offset (8-byte aligned):
 *   u32 keyLen | key | u32 blobLen | blob | u64 hashArena64(all prior)
 *
 * Writer election is flock-based (Mapping::tryLockExclusive): exactly
 * one process opens Writer; the rest attach Reader or, if the file is
 * not yet valid, degrade to Invalid and the caller falls back to its
 * legacy path.
 */

#ifndef CRW_STORE_RECORD_STORE_H_
#define CRW_STORE_RECORD_STORE_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "store/arena.h"

namespace crw {
namespace store {

/** Bump when the header or record encoding changes shape. */
inline constexpr std::uint32_t kRecordStoreFormatVersion = 1;

class RecordStore
{
  public:
    enum class Mode
    {
        Invalid, ///< no usable mapping; every call degrades safely
        Writer,  ///< holds the flock; may put/erase/clear
        Reader,  ///< read-only attach of another process's store
    };

    enum class FindResult
    {
        Hit,
        Miss,
        Corrupt, ///< a slot pointed at a record that failed validation
    };

    struct Stats
    {
        std::uint64_t entries = 0;
        std::uint64_t dataBytes = 0;
        std::uint64_t dataCapacity = 0;
        std::uint64_t indexSlots = 0;
        std::uint64_t putFailures = 0;
        std::uint32_t storeVersion = 0;
        std::uint32_t appVersion = 0;
    };

    RecordStore() = default;
    RecordStore(RecordStore &&) = default;
    RecordStore &operator=(RecordStore &&) = default;

    /**
     * Open @p path, electing Writer via flock. A Writer finding no
     * valid store (fresh file, torn init, version mismatch) formats
     * one with @p index_slots slots (power of two) and @p data_capacity
     * bytes; a process that loses the election attaches Reader if the
     * store validates, else ends up Invalid. Always returns with a
     * well-defined mode(); false only when even Invalid could not be
     * set up (e.g. the path is unopenable) — same caller behavior.
     */
    bool open(const std::string &path, std::uint32_t app_version,
              std::size_t index_slots, std::size_t data_capacity,
              std::string *error = nullptr);

    /** Writer-mode store over anonymous memory (tests, fallbacks). */
    bool openAnonymous(std::uint32_t app_version,
                       std::size_t index_slots,
                       std::size_t data_capacity);

    /**
     * Probe @p key. On Hit fills @p blob; on Corrupt the caller
     * should count it and treat it as a miss. @p file_offset (may be
     * null) receives the record's absolute file offset on Hit —
     * corruption tests use it to aim their byte flips.
     */
    FindResult find(const std::string &key,
                    std::vector<std::uint8_t> &blob,
                    std::uint64_t *file_offset = nullptr) const;

    /**
     * Publish @p blob under @p key (Writer only). Re-putting a key
     * repoints its slot at a fresh record. False when not Writer or
     * when the data region cannot fit the record (putFailures++).
     */
    bool put(const std::string &key,
             const std::vector<std::uint8_t> &blob);

    /** Tombstone @p key's slot (Writer only). True if it was live. */
    bool erase(const std::string &key);

    /** Drop every record: zero the index, rewind the tail (Writer). */
    bool clear();

    /**
     * Visit every live, validating record. Corrupt or vanished
     * records are skipped — this is the GC's collection walk, which
     * must never crash on a half-rewritten store.
     */
    void forEachRecord(
        const std::function<void(const std::string &key,
                                 const std::uint8_t *blob,
                                 std::size_t blob_len)> &fn) const;

    /** Seqlock-consistent stats snapshot (any mode but Invalid). */
    Stats stats() const;

    Mode mode() const { return mode_; }
    bool writable() const { return mode_ == Mode::Writer; }
    bool valid() const { return mode_ != Mode::Invalid; }

    void close();

  private:
    bool initialize(std::uint32_t app_version, std::size_t index_slots,
                    std::size_t data_capacity);
    bool validateHeader(std::uint32_t app_version);

    std::uint8_t *base() { return static_cast<std::uint8_t *>(mapping_.data()); }
    const std::uint8_t *base() const
    {
        return static_cast<const std::uint8_t *>(mapping_.data());
    }

    Mapping mapping_;
    Mode mode_ = Mode::Invalid;
    std::uint64_t indexOffset_ = 0;
    std::uint64_t indexSlots_ = 0; ///< power of two
    std::uint64_t dataOffset_ = 0;
    std::uint64_t dataCapacity_ = 0;
    std::uint32_t appVersion_ = 0;
};

} // namespace store
} // namespace crw

#endif // CRW_STORE_RECORD_STORE_H_
