#include "store/arena.h"

#include <cstring>

#include <fcntl.h>
#include <sys/file.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include "common/byteio.h"

namespace crw {
namespace store {

namespace {

constexpr char kArenaMagic[8] = {'C', 'R', 'W', 'A', 'R', 'E', 'N', 'A'};
constexpr std::size_t kSuperblockBytes = 48;
constexpr std::size_t kSegmentEntryBytes = 24;
constexpr std::uint32_t kMaxSegments = 256;
constexpr std::uint32_t kMaxKeyLen = 4096;
/** Byte offset of headerChecksum inside the superblock. */
constexpr std::size_t kHeaderChecksumOff = 40;

std::size_t
alignUp(std::size_t n, std::size_t a)
{
    return (n + a - 1) / a * a;
}

bool
fail(std::string *error, const std::string &why)
{
    if (error)
        *error = why;
    return false;
}

} // namespace

std::uint64_t
hashArena64(const void *data, std::size_t n)
{
    // Eight bytes per step: xor-fold each word into the state, then
    // multiply-mix (the FNV idea at word granularity, with an extra
    // shift-xor so high bytes diffuse). The short tail goes through
    // plain FNV-1a seeded with the running state.
    const std::uint8_t *p = static_cast<const std::uint8_t *>(data);
    std::uint64_t h = 0x9e3779b97f4a7c15ull ^ n;
    std::size_t i = 0;
    for (; i + 8 <= n; i += 8) {
        std::uint64_t w;
        std::memcpy(&w, p + i, 8);
        h ^= w;
        h *= 0xff51afd7ed558ccdull;
        h ^= h >> 29;
    }
    return fnv1a64(p + i, n - i, h);
}

// ---------------------------------------------------------------- Mapping

Mapping::~Mapping()
{
    close();
}

Mapping::Mapping(Mapping &&other) noexcept
    : addr_(other.addr_),
      size_(other.size_),
      fd_(other.fd_),
      writable_(other.writable_),
      locked_(other.locked_)
{
    other.addr_ = nullptr;
    other.size_ = 0;
    other.fd_ = -1;
    other.writable_ = false;
    other.locked_ = false;
}

Mapping &
Mapping::operator=(Mapping &&other) noexcept
{
    if (this != &other) {
        close();
        addr_ = other.addr_;
        size_ = other.size_;
        fd_ = other.fd_;
        writable_ = other.writable_;
        locked_ = other.locked_;
        other.addr_ = nullptr;
        other.size_ = 0;
        other.fd_ = -1;
        other.writable_ = false;
        other.locked_ = false;
    }
    return *this;
}

void
Mapping::close()
{
    if (addr_) {
        ::munmap(addr_, size_);
        addr_ = nullptr;
    }
    if (fd_ >= 0) {
        ::close(fd_); // releases any flock
        fd_ = -1;
    }
    size_ = 0;
    writable_ = false;
    locked_ = false;
}

bool
Mapping::openFile(const std::string &path, std::size_t create_size,
                  bool writable, Mapping &out, std::string *error)
{
    out.close();
    const int flags =
        (writable ? O_RDWR : O_RDONLY) |
        (writable && create_size > 0 ? O_CREAT : 0);
    const int fd = ::open(path.c_str(), flags, 0644);
    if (fd < 0)
        return fail(error, "cannot open " + path);

    struct stat st;
    if (::fstat(fd, &st) != 0) {
        ::close(fd);
        return fail(error, "cannot stat " + path);
    }
    std::size_t size = static_cast<std::size_t>(st.st_size);
    if (writable && size < create_size) {
        if (::ftruncate(fd, static_cast<off_t>(create_size)) != 0) {
            ::close(fd);
            return fail(error, "cannot size " + path);
        }
        size = create_size;
    }
    if (size == 0) {
        ::close(fd);
        return fail(error, path + " is empty");
    }

    void *addr =
        ::mmap(nullptr, size, PROT_READ | (writable ? PROT_WRITE : 0),
               writable ? MAP_SHARED : MAP_PRIVATE, fd, 0);
    if (addr == MAP_FAILED) {
        ::close(fd);
        return fail(error, "cannot map " + path);
    }
    out.addr_ = addr;
    out.size_ = size;
    out.fd_ = fd;
    out.writable_ = writable;
    return true;
}

bool
Mapping::createAnonymous(std::size_t size, Mapping &out,
                         std::string *error)
{
    out.close();
    if (size == 0)
        return fail(error, "anonymous mapping needs a size");
    void *addr = ::mmap(nullptr, size, PROT_READ | PROT_WRITE,
                        MAP_PRIVATE | MAP_ANONYMOUS, -1, 0);
    if (addr == MAP_FAILED)
        return fail(error, "cannot map anonymous memory");
    out.addr_ = addr;
    out.size_ = size;
    out.fd_ = -1;
    out.writable_ = true;
    return true;
}

bool
Mapping::tryLockExclusive()
{
    if (fd_ < 0 || !writable_)
        return false;
    if (locked_)
        return true;
    if (::flock(fd_, LOCK_EX | LOCK_NB) != 0)
        return false;
    locked_ = true;
    return true;
}

// ----------------------------------------------------------- ArenaBuilder

void
ArenaBuilder::addSegment(const std::string &name, const void *data,
                         std::size_t bytes)
{
    Pending seg;
    seg.name = name.substr(0, 8);
    const std::uint8_t *p = static_cast<const std::uint8_t *>(data);
    seg.bytes.assign(p, p + bytes);
    segments_.push_back(std::move(seg));
}

void
ArenaBuilder::assemble(std::vector<std::uint8_t> &out) const
{
    const std::size_t header_raw = kSuperblockBytes +
                                   segments_.size() * kSegmentEntryBytes +
                                   appKey_.size();
    const std::size_t payload_off = alignUp(header_raw, kArenaAlign);

    // Lay the segments out first so the table can be written in one
    // pass: each one bump-allocated at the next aligned offset.
    std::vector<std::uint64_t> offsets;
    std::size_t cursor = payload_off;
    for (const Pending &seg : segments_) {
        offsets.push_back(cursor);
        cursor = alignUp(cursor + seg.bytes.size(), kArenaAlign);
    }
    const std::size_t file_bytes = cursor;

    out.assign(file_bytes, 0);
    auto put32 = [&out](std::size_t off, std::uint32_t v) {
        for (int i = 0; i < 4; ++i)
            out[off + static_cast<std::size_t>(i)] =
                static_cast<std::uint8_t>(v >> (8 * i));
    };
    auto put64 = [&out](std::size_t off, std::uint64_t v) {
        for (int i = 0; i < 8; ++i)
            out[off + static_cast<std::size_t>(i)] =
                static_cast<std::uint8_t>(v >> (8 * i));
    };

    std::memcpy(out.data(), kArenaMagic, 8);
    put32(8, kArenaFormatVersion);
    put32(12, appVersion_);
    put64(16, file_bytes);
    put32(32, static_cast<std::uint32_t>(segments_.size()));
    put32(36, static_cast<std::uint32_t>(appKey_.size()));

    std::size_t entry = kSuperblockBytes;
    for (std::size_t i = 0; i < segments_.size(); ++i) {
        std::memcpy(out.data() + entry, segments_[i].name.data(),
                    segments_[i].name.size());
        put64(entry + 8, offsets[i]);
        put64(entry + 16, segments_[i].bytes.size());
        entry += kSegmentEntryBytes;
        std::memcpy(out.data() + offsets[i], segments_[i].bytes.data(),
                    segments_[i].bytes.size());
    }
    std::memcpy(out.data() + entry, appKey_.data(), appKey_.size());

    put64(24, hashArena64(out.data() + payload_off,
                          file_bytes - payload_off));
    // Header checksum last, over the padded header with its own field
    // still zero.
    put64(kHeaderChecksumOff,
          fnv1a64(out.data(), payload_off));
}

bool
ArenaBuilder::write(const std::string &path, std::string *error) const
{
    std::vector<std::uint8_t> image;
    assemble(image);
    return writeFileAtomic(image, path, error);
}

// -------------------------------------------------------------- ArenaView

bool
ArenaView::attachMapping(Mapping mapping,
                         std::uint32_t expected_app_version,
                         const std::string &expected_key,
                         ArenaView &out, std::string *error)
{
    const std::uint8_t *base =
        static_cast<const std::uint8_t *>(mapping.data());
    const std::size_t size = mapping.size();
    if (!mapping.valid() || size < kSuperblockBytes)
        return fail(error, "arena: file shorter than a superblock");
    if (std::memcmp(base, kArenaMagic, 8) != 0)
        return fail(error, "arena: bad magic");

    auto get32 = [base](std::size_t off) {
        std::uint32_t v = 0;
        for (int i = 0; i < 4; ++i)
            v |= static_cast<std::uint32_t>(
                     base[off + static_cast<std::size_t>(i)])
                 << (8 * i);
        return v;
    };
    auto get64 = [base](std::size_t off) {
        std::uint64_t v = 0;
        for (int i = 0; i < 8; ++i)
            v |= static_cast<std::uint64_t>(
                     base[off + static_cast<std::size_t>(i)])
                 << (8 * i);
        return v;
    };

    if (get32(8) != kArenaFormatVersion)
        return fail(error, "arena: unsupported arena version " +
                               std::to_string(get32(8)));
    const std::uint32_t app_version = get32(12);
    if (app_version != expected_app_version)
        return fail(error, "arena: app version " +
                               std::to_string(app_version) +
                               " (expected " +
                               std::to_string(expected_app_version) +
                               ")");
    const std::uint64_t file_bytes = get64(16);
    if (file_bytes != size)
        return fail(error,
                    "arena: truncated (header claims " +
                        std::to_string(file_bytes) + " bytes, file has " +
                        std::to_string(size) + ")");
    const std::uint32_t count = get32(32);
    const std::uint32_t key_len = get32(36);
    if (count > kMaxSegments || key_len > kMaxKeyLen)
        return fail(error, "arena: implausible header counts");
    const std::size_t header_raw =
        kSuperblockBytes + count * kSegmentEntryBytes + key_len;
    const std::size_t payload_off = alignUp(header_raw, kArenaAlign);
    if (payload_off > size)
        return fail(error, "arena: header overruns the file");

    // Header checksum: hash the header image with the stored checksum
    // field zeroed out (exactly how the builder computed it).
    {
        std::vector<std::uint8_t> header(base, base + payload_off);
        std::memset(header.data() + kHeaderChecksumOff, 0, 8);
        if (fnv1a64(header.data(), header.size()) !=
            get64(kHeaderChecksumOff))
            return fail(error, "arena: header checksum mismatch");
    }

    std::vector<ArenaSegmentInfo> segments;
    std::size_t entry = kSuperblockBytes;
    for (std::uint32_t i = 0; i < count; ++i) {
        ArenaSegmentInfo info;
        const char *name =
            reinterpret_cast<const char *>(base + entry);
        info.name.assign(name, strnlen(name, 8));
        info.offset = get64(entry + 8);
        info.bytes = get64(entry + 16);
        if (info.offset < payload_off || info.offset > size ||
            info.bytes > size - info.offset)
            return fail(error, "arena: segment \"" + info.name +
                                   "\" out of bounds");
        segments.push_back(std::move(info));
        entry += kSegmentEntryBytes;
    }
    const std::string key(
        reinterpret_cast<const char *>(base + entry), key_len);
    if (key != expected_key)
        return fail(error, "arena: identity key mismatch (file is \"" +
                               key + "\")");

    out.mapping_ = std::move(mapping);
    out.appVersion_ = app_version;
    out.appKey_ = key;
    out.segments_ = std::move(segments);
    out.payloadOffset_ = payload_off;
    out.payloadChecksum_ = get64(24);
    return true;
}

bool
ArenaView::attach(const std::string &path,
                  std::uint32_t expected_app_version,
                  const std::string &expected_key, ArenaView &out,
                  std::string *error)
{
    Mapping mapping;
    if (!Mapping::openFile(path, 0, /*writable=*/false, mapping, error))
        return false;
    return attachMapping(std::move(mapping), expected_app_version,
                         expected_key, out, error);
}

const void *
ArenaView::segment(const std::string &name, std::uint64_t *bytes) const
{
    for (const ArenaSegmentInfo &info : segments_) {
        if (info.name == name) {
            if (bytes)
                *bytes = info.bytes;
            return static_cast<const std::uint8_t *>(mapping_.data()) +
                   info.offset;
        }
    }
    if (bytes)
        *bytes = 0;
    return nullptr;
}

bool
ArenaView::verifyPayload() const
{
    if (!valid())
        return false;
    const std::uint8_t *base =
        static_cast<const std::uint8_t *>(mapping_.data());
    return hashArena64(base + payloadOffset_,
                       mapping_.size() - payloadOffset_) ==
           payloadChecksum_;
}

} // namespace store
} // namespace crw
