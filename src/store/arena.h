/**
 * @file
 * Arena/segment layer: mmap-backed storage shared across processes
 * (DESIGN.md §13). Three pieces, bottom up:
 *
 *  - Mapping: an RAII mmap of a file (read-only or shared-writable)
 *    or of anonymous memory, plus non-blocking flock-based writer
 *    election. Every cross-process store in the repo sits on one.
 *
 *  - ArenaBuilder / ArenaView: *immutable* segmented arena files.
 *    A builder bump-allocates named segments, stamps a versioned and
 *    checksummed superblock, and writes the whole image atomically
 *    (temp file + rename); a view attaches the mapping read-only and
 *    resolves segments in O(1) — only the fixed-size header is
 *    validated at attach, so a warm start never re-reads the payload.
 *    verifyPayload() re-hashes the payload on demand for consumers
 *    that feed the bytes into check-free hot loops (the flat-trace
 *    replay arenas do).
 *
 *  - hashArena64: the payload checksum. FNV-1a is the repo's identity
 *    hash but walks one byte per step; arena payloads are tens of MB,
 *    so this one mixes eight bytes per step (same spirit as wyhash's
 *    folding) and exists only as a *format-internal* integrity check —
 *    it never names anything outside the file that carries it.
 *
 * The superblock (all fields little-endian):
 *
 *   off  0  magic[8]          "CRWARENA"
 *   off  8  u32 arenaVersion  kArenaFormatVersion
 *   off 12  u32 appVersion    caller-defined (e.g. flat-trace format)
 *   off 16  u64 fileBytes     total file size (truncation detector)
 *   off 24  u64 payloadChecksum  hashArena64 over [payload, fileBytes)
 *   off 32  u32 segmentCount
 *   off 36  u32 keyLen        application identity-key length
 *   off 40  u64 headerChecksum   FNV-1a over [0, payloadOffset) with
 *                                this field zeroed
 *   off 48  segmentCount × { char name[8]; u64 offset; u64 bytes; }
 *   ...     key bytes, then zero padding to a kArenaAlign boundary
 *   payloadOffset: segments, each kArenaAlign (64-byte) aligned —
 *                  cache-line aligned so hot loops that stream a
 *                  mapped segment (the flat-trace replay walk, the
 *                  SoA follower pass) never split a line, and wide
 *                  aligned vector loads over segment data are legal
 *
 * A view rejects — cleanly, never by crashing — any file whose magic,
 * versions, identity key, header checksum, fileBytes, or segment
 * bounds disagree with the mapping (tests/store/test_arena.cc fuzzes
 * truncations and corruptions against this contract).
 */

#ifndef CRW_STORE_ARENA_H_
#define CRW_STORE_ARENA_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace crw {
namespace store {

/** Bump when the superblock layout changes shape (v2: segment
 *  alignment widened from 16 to one cache line; v1 files fail the
 *  version check cleanly and are rebuilt). */
inline constexpr std::uint32_t kArenaFormatVersion = 2;

/** Segment payloads are aligned to this within the file. One x86
 *  cache line: mmap bases are page-aligned, so a 64-byte file offset
 *  makes the in-memory segment pointer 64-byte aligned too — the
 *  contract the SIMD replay layer's aligned loads rely on. */
inline constexpr std::size_t kArenaAlign = 64;

/**
 * Word-at-a-time mixing hash for arena payload checksums. Format-
 * internal only (see file comment); deterministic across runs and
 * platforms of equal endianness.
 */
std::uint64_t hashArena64(const void *data, std::size_t n);

/** RAII mmap of a file or of anonymous memory. Move-only. */
class Mapping
{
  public:
    Mapping() = default;
    ~Mapping();

    Mapping(Mapping &&other) noexcept;
    Mapping &operator=(Mapping &&other) noexcept;
    Mapping(const Mapping &) = delete;
    Mapping &operator=(const Mapping &) = delete;

    /**
     * Map @p path. @p create_size > 0 creates the file (O_CREAT,
     * sized with ftruncate — sparse until written) if missing or
     * shorter; 0 requires it to exist. @p writable selects a shared
     * read-write mapping. False (and *error) on any syscall failure.
     */
    static bool openFile(const std::string &path,
                         std::size_t create_size, bool writable,
                         Mapping &out, std::string *error = nullptr);

    /** Anonymous zero-filled writable memory (no backing file). */
    static bool createAnonymous(std::size_t size, Mapping &out,
                                std::string *error = nullptr);

    /**
     * Non-blocking flock(LOCK_EX) on the backing file: the writer
     * election for single-writer stores. False when another process
     * holds it (or the mapping is anonymous/read-only). The lock is
     * released when the mapping closes.
     */
    bool tryLockExclusive();

    bool valid() const { return addr_ != nullptr; }
    void *data() { return addr_; }
    const void *data() const { return addr_; }
    std::size_t size() const { return size_; }
    bool writable() const { return writable_; }
    bool locked() const { return locked_; }

    /** Unmap and close (idempotent). */
    void close();

  private:
    void *addr_ = nullptr;
    std::size_t size_ = 0;
    int fd_ = -1;
    bool writable_ = false;
    bool locked_ = false;
};

/** One named payload range of an attached arena. */
struct ArenaSegmentInfo
{
    std::string name;       ///< at most 8 significant characters
    std::uint64_t offset;   ///< absolute file offset (kArenaAlign-ed)
    std::uint64_t bytes;
};

/**
 * Assembles one immutable arena image. Segment bytes are copied at
 * addSegment() time; write() stamps the superblock and lands the file
 * atomically so a reader can never attach a torn image.
 */
class ArenaBuilder
{
  public:
    ArenaBuilder(std::uint32_t app_version, std::string app_key)
        : appVersion_(app_version),
          appKey_(std::move(app_key))
    {}

    /** Append one segment (@p name truncated to 8 chars). */
    void addSegment(const std::string &name, const void *data,
                    std::size_t bytes);

    /** Serialize the arena image into @p out (for tests). */
    void assemble(std::vector<std::uint8_t> &out) const;

    /** assemble() + temp-file + rename to @p path. */
    bool write(const std::string &path,
               std::string *error = nullptr) const;

  private:
    struct Pending
    {
        std::string name;
        std::vector<std::uint8_t> bytes;
    };

    std::uint32_t appVersion_;
    std::string appKey_;
    std::vector<Pending> segments_;
};

/**
 * Read-only attachment of an arena file. attach() validates the
 * fixed-size header only — O(1) in the payload size; segment data is
 * served as pointers into the mapping, which the view owns.
 */
class ArenaView
{
  public:
    ArenaView() = default;

    ArenaView(ArenaView &&) = default;
    ArenaView &operator=(ArenaView &&) = default;

    /**
     * Map @p path and validate the superblock against
     * @p expected_app_version and @p expected_key (see file comment
     * for the rejection list). False — with the mapping released —
     * on any mismatch.
     */
    static bool attach(const std::string &path,
                       std::uint32_t expected_app_version,
                       const std::string &expected_key, ArenaView &out,
                       std::string *error = nullptr);

    /** As attach(), but over an already-mapped image (for tests). */
    static bool attachMapping(Mapping mapping,
                              std::uint32_t expected_app_version,
                              const std::string &expected_key,
                              ArenaView &out,
                              std::string *error = nullptr);

    bool valid() const { return mapping_.valid(); }
    std::uint32_t appVersion() const { return appVersion_; }
    const std::string &appKey() const { return appKey_; }
    const std::vector<ArenaSegmentInfo> &segments() const
    {
        return segments_;
    }

    /**
     * Resolve one segment; null when absent. @p bytes receives the
     * segment's byte length.
     */
    const void *segment(const std::string &name,
                        std::uint64_t *bytes) const;

    /**
     * Re-hash the payload against the superblock checksum — O(payload)
     * by design, for consumers whose hot loops assume well-formed
     * bytes. attach() deliberately does not do this.
     */
    bool verifyPayload() const;

  private:
    Mapping mapping_;
    std::uint32_t appVersion_ = 0;
    std::string appKey_;
    std::vector<ArenaSegmentInfo> segments_;
    std::uint64_t payloadOffset_ = 0;
    std::uint64_t payloadChecksum_ = 0;
};

} // namespace store
} // namespace crw

#endif // CRW_STORE_ARENA_H_
