/**
 * @file
 * The working-set concept on register windows (paper §4.6 / §6.5):
 * side-by-side FIFO versus working-set scheduling for the spell
 * checker across a range of window counts, showing how the scheduler
 * alone rescues the sharing schemes on small window files.
 */

#include <iostream>

#include "common/flags.h"
#include "common/table.h"
#include "spell/app.h"

using namespace crw;

namespace {

double
runOnce(SchemeKind scheme, int windows, SchedPolicy policy,
        const SpellWorkload &wl, const SpellConfig &cfg)
{
    RuntimeConfig rc;
    rc.engine.scheme = scheme;
    rc.engine.numWindows = windows;
    rc.policy = policy;
    Runtime rt(rc);
    SpellApp app(rt, wl, cfg);
    rt.run();
    return static_cast<double>(rt.now()) / 1e6;
}

} // namespace

int
main(int argc, char **argv)
{
    FlagSet flags;
    flags.defineInt("corpus-bytes", 40500, "LaTeX corpus size");
    if (!flags.parse(argc, argv))
        return 0;

    SpellConfig cfg =
        behaviorConfig(ConcurrencyLevel::High, GranularityLevel::Fine);
    cfg.corpusBytes =
        static_cast<std::size_t>(flags.getInt("corpus-bytes"));
    const SpellWorkload wl = SpellWorkload::make(cfg);

    std::cout << "Execution time [Mcycles], spell checker at high "
                 "concurrency, fine granularity.\n"
                 "A thread awoken with windows still resident jumps "
                 "the ready queue under WS.\n\n";

    Table table({"windows", "SP FIFO", "SP WS", "SNP FIFO", "SNP WS",
                 "NS FIFO"});
    for (const int w : {5, 6, 7, 8, 10, 12, 16, 24, 32}) {
        table.addRowOf(
            w,
            formatDouble(runOnce(SchemeKind::SP, w, SchedPolicy::Fifo,
                                 wl, cfg),
                         1),
            formatDouble(runOnce(SchemeKind::SP, w,
                                 SchedPolicy::WorkingSet, wl, cfg),
                         1),
            formatDouble(runOnce(SchemeKind::SNP, w, SchedPolicy::Fifo,
                                 wl, cfg),
                         1),
            formatDouble(runOnce(SchemeKind::SNP, w,
                                 SchedPolicy::WorkingSet, wl, cfg),
                         1),
            formatDouble(runOnce(SchemeKind::NS, w, SchedPolicy::Fifo,
                                 wl, cfg),
                         1));
    }
    table.printText(std::cout);

    std::cout << "\nPaper §6.5: \"the sharing schemes work well with "
                 "even seven or eight windows\" once the working-set "
                 "concept is incorporated, with no significant loss "
                 "at a large number of windows.\n";
    return 0;
}
