/**
 * @file
 * The paper's evaluation application end to end: the seven-thread
 * multi-threaded spell checker (§5.1) over the synthetic LaTeX corpus,
 * with every knob on the command line — scheme, window count, buffer
 * sizes (M/N = granularity/concurrency), scheduling policy.
 *
 * Example runs:
 *   spellcheck                           # SP, 8 windows, HC-fine
 *   spellcheck --scheme=NS               # the conventional scheme
 *   spellcheck --m=1024 --n=4            # low concurrency, medium
 *   spellcheck --policy=WS --windows=8   # §4.6 working-set scheduling
 */

#include <iostream>

#include "common/flags.h"
#include "common/logging.h"
#include "common/table.h"
#include "spell/app.h"
#include "trace/behavior.h"

using namespace crw;

int
main(int argc, char **argv)
{
    FlagSet flags;
    flags.defineString("scheme", "SP", "NS, SNP, SP or INF");
    flags.defineInt("windows", 8, "register windows (3-32)");
    flags.defineInt("m", 1, "buffer bytes for S1, S4-S6");
    flags.defineInt("n", 1, "buffer bytes for S2, S3");
    flags.defineString("policy", "FIFO", "FIFO or WS (working set)");
    flags.defineInt("corpus-bytes", 40500, "LaTeX corpus size");
    flags.defineBool("show-words", false, "print flagged words");
    if (!flags.parse(argc, argv))
        return 0;

    SpellConfig cfg;
    cfg.m = static_cast<std::size_t>(flags.getInt("m"));
    cfg.n = static_cast<std::size_t>(flags.getInt("n"));
    cfg.corpusBytes =
        static_cast<std::size_t>(flags.getInt("corpus-bytes"));
    const SpellWorkload workload = SpellWorkload::make(cfg);

    RuntimeConfig rc;
    const std::string scheme = flags.getString("scheme");
    rc.engine.scheme = scheme == "NS"    ? SchemeKind::NS
                       : scheme == "SNP" ? SchemeKind::SNP
                       : scheme == "INF" ? SchemeKind::Infinite
                                         : SchemeKind::SP;
    rc.engine.numWindows = static_cast<int>(flags.getInt("windows"));
    rc.policy = flags.getString("policy") == "WS"
                    ? SchedPolicy::WorkingSet
                    : SchedPolicy::Fifo;
    Runtime rt(rc);

    BehaviorTracker tracker(64);
    rt.engine().setObserver(&tracker);

    SpellApp app(rt, workload, cfg);
    rt.run();
    tracker.finish(rt.now());

    const auto &s = rt.engine().stats();
    std::cout << "spell checker: corpus " << workload.corpus.size()
              << " bytes, " << app.report().wordsFromDelatex
              << " words, " << app.report().misspelled.size()
              << " flagged\n\n";

    Table threads({"thread", "switches", "saves"});
    for (int n = 1; n <= SpellApp::kNumThreads; ++n) {
        const auto &c = rt.engine().threadCounters(app.tid(n));
        threads.addRowOf(std::string(SpellApp::threadLabel(n)),
                         c.switchesIn, c.saves);
    }
    threads.printText(std::cout);

    std::cout << "\nexecution time:    " << rt.now() << " cycles\n"
              << "context switches:  " << s.counterValue("switches")
              << " (mean "
              << formatDouble(
                     s.distributions().at("switch_cost").mean(), 1)
              << " cyc)\n"
              << "window traps:      "
              << s.counterValue("overflow_traps") << " overflow, "
              << s.counterValue("underflow_traps") << " underflow\n"
              << "behavior (paper §5):\n"
              << "  activity/quantum:     "
              << formatDouble(tracker.activityPerQuantum().mean(), 2)
              << " windows\n"
              << "  total window activity: "
              << formatDouble(tracker.totalWindowActivity().mean(), 1)
              << " windows\n"
              << "  concurrency:          "
              << formatDouble(tracker.concurrency().mean(), 2) << "\n"
              << "  parallel slackness:   "
              << formatDouble(rt.scheduler().slackness().mean(), 2)
              << "\n";

    if (flags.getBool("show-words")) {
        std::cout << "\nflagged words:\n";
        for (const auto &w : app.report().misspelled)
            std::cout << "  " << w << '\n';
    }
    return 0;
}
