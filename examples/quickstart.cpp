/**
 * @file
 * Quickstart: the crw public API in one page.
 *
 * Builds a simulated machine with 8 register windows under the
 * paper's SP scheme (sharing with private reserved windows), runs two
 * cooperating threads through a stream, and prints where the cycles
 * went. Try `--scheme=NS --windows=8` to watch the conventional
 * scheme pay for every context switch.
 */

#include <iostream>

#include "common/flags.h"
#include "common/logging.h"
#include "common/table.h"
#include "rt/stream.h"

using namespace crw;

namespace {

SchemeKind
parseScheme(const std::string &name)
{
    if (name == "NS")
        return SchemeKind::NS;
    if (name == "SNP")
        return SchemeKind::SNP;
    if (name == "SP")
        return SchemeKind::SP;
    if (name == "INF")
        return SchemeKind::Infinite;
    crw_fatal_unreachable("unknown scheme '" + name +
                          "' (want NS, SNP, SP, INF)");
}

} // namespace

int
main(int argc, char **argv)
{
    FlagSet flags;
    flags.defineString("scheme", "SP", "window scheme: NS, SNP, SP, INF");
    flags.defineInt("windows", 8, "number of register windows (3-32)");
    flags.defineInt("items", 1000, "work items to pipeline");
    if (!flags.parse(argc, argv))
        return 0;

    // 1. Configure the simulated machine.
    RuntimeConfig cfg;
    cfg.engine.scheme = parseScheme(flags.getString("scheme"));
    cfg.engine.numWindows = static_cast<int>(flags.getInt("windows"));
    Runtime rt(cfg);

    // 2. Connect two threads with a small bounded stream (capacity 2
    //    bytes: every few items the producer blocks and a context
    //    switch happens).
    Stream pipe(rt, "pipe", 2);
    const long items = flags.getInt("items");
    long consumed = 0;

    rt.spawn("producer", [&] {
        for (long i = 0; i < items; ++i) {
            // Frame = one traced procedure activation: its constructor
            // runs the `save`, its destructor the `restore`. Overflow
            // and underflow traps happen here, exactly as on SPARC.
            Frame make_item(rt);
            rt.charge(25); // some simulated computation
            pipe.putByte(static_cast<std::uint8_t>(i & 0xff));
        }
        pipe.close();
    });

    rt.spawn("consumer", [&] {
        while (true) {
            Frame handle_item(rt);
            const int byte = pipe.getByte();
            if (byte == kEof)
                return;
            rt.charge(40);
            ++consumed;
        }
    });

    // 3. Run to completion and inspect the machine.
    rt.run();

    const auto &s = rt.engine().stats();
    std::cout << "scheme " << schemeName(rt.engine().scheme())
              << ", " << rt.engine().numWindows() << " windows\n"
              << "consumed items:     " << consumed << "\n"
              << "total cycles:       " << rt.now() << "\n"
              << "  compute:          " << s.counterValue("cycles_compute")
              << "\n"
              << "  context switches: " << s.counterValue("cycles_switch")
              << " (" << s.counterValue("switches") << " switches, mean "
              << formatDouble(
                     s.distributions().at("switch_cost").mean(), 1)
              << " cyc)\n"
              << "  window traps:     " << s.counterValue("cycles_trap")
              << " (" << s.counterValue("overflow_traps") << " overflow, "
              << s.counterValue("underflow_traps") << " underflow)\n"
              << "saves/restores:     " << s.counterValue("saves") << "/"
              << s.counterValue("restores") << "\n";
    return 0;
}
