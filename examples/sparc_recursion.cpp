/**
 * @file
 * The instruction-level layer in action: assemble a recursive SPARC
 * program, load the window-management kernel (conventional or the
 * paper's sharing handlers), and watch real overflow/underflow traps
 * manage the cyclic window file.
 *
 * Example runs:
 *   sparc_recursion                       # sharing kernel, depth 15
 *   sparc_recursion --kernel=conventional --depth=24 --windows=5
 *   sparc_recursion --show-asm            # print the handler source
 */

#include <iostream>

#include "common/flags.h"
#include "common/logging.h"
#include "kernel/machine.h"

using namespace crw;
using namespace crw::kernel;

int
main(int argc, char **argv)
{
    FlagSet flags;
    flags.defineString("kernel", "sharing",
                       "conventional or sharing (the paper's)");
    flags.defineInt("windows", 7, "register windows (3-32)");
    flags.defineInt("depth", 15, "recursion depth");
    flags.defineBool("show-asm", false, "dump the kernel assembly");
    if (!flags.parse(argc, argv))
        return 0;

    const int windows = static_cast<int>(flags.getInt("windows"));
    const KernelFlavor flavor =
        flags.getString("kernel") == "conventional"
            ? KernelFlavor::Conventional
            : KernelFlavor::Sharing;

    if (flags.getBool("show-asm")) {
        std::cout << (flavor == KernelFlavor::Conventional
                          ? conventionalKernelSource(windows)
                          : sharingKernelSource(windows));
        return 0;
    }

    // sum(n) = n + sum(n-1), one register window per activation; the
    // return value comes back through the §4.3 peephole restore that
    // the sharing underflow handler must emulate.
    const std::string user =
        "start:\n"
        "    mov " + std::to_string(flags.getInt("depth")) + ", %o0\n"
        "    call rsum\n"
        "    nop\n"
        "    ta 0\n"
        "rsum:\n"
        "    save %sp, -96, %sp\n"
        "    cmp %i0, 1\n"
        "    ble rbase\n"
        "    nop\n"
        "    call rsum\n"
        "    sub %i0, 1, %o0\n"
        "    add %o0, %i0, %i0\n"
        "    ret\n"
        "    restore %i0, 0, %o0\n"
        "rbase:\n"
        "    mov 1, %i0\n"
        "    ret\n"
        "    restore %i0, 0, %o0\n";

    Machine m(flavor, windows, user);
    const Word result = m.runToHalt();

    const long n = flags.getInt("depth");
    std::cout << "kernel:   "
              << (flavor == KernelFlavor::Conventional
                      ? "conventional (NS substrate)"
                      : "sharing (restore-in-place, paper §3.2)")
              << ", " << windows << " windows\n"
              << "sum(1.." << n << ") = " << result
              << (result == static_cast<Word>(n * (n + 1) / 2)
                      ? "  [correct]\n"
                      : "  [WRONG]\n")
              << "instructions executed: " << m.cpu.instructions()
              << "\n"
              << "cycles:                " << m.cpu.cycles() << "\n"
              << "overflow traps:        "
              << m.cpu.stats().counterValue("trap.window_overflow")
              << "\n"
              << "underflow traps:       "
              << m.cpu.stats().counterValue("trap.window_underflow")
              << "\n";
    return 0;
}
